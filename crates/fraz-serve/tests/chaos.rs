//! Chaos suite: the acceptance criterion of the robustness PR.
//!
//! A live server runs with double-digit store fault rates (transient,
//! permanent, torn writes, injected latency) while concurrent clients —
//! some on deliberately broken sockets — push a mixed workload.  The
//! assertions are the service's whole contract:
//!
//! * the server never panics or hangs,
//! * every issued job gets **exactly one** typed outcome (or a client-side
//!   transport error, the one untyped thing a broken socket can produce),
//! * every blob the server acknowledged `Stored` reads back byte-exact —
//!   torn writes never surface as data,
//! * every `Compressed` blob decodes back to a field of the right shape,
//! * the drain completes and flushes the tune cache.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use fraz_serve::chaos::{FaultyStream, StreamFaults};
use fraz_serve::loadgen::workload_fields;
use fraz_serve::proto::{read_frame, write_frame, Request, Response, MAX_FRAME_LEN};
use fraz_serve::server::{start, ServeConfig};
use fraz_serve::Client;
use fraz_store::{FaultConfig, RetryPolicy};

fn chaos_config(root: &std::path::Path) -> ServeConfig {
    ServeConfig {
        workers: 2,
        store_dir: Some(root.join("store")),
        tune_cache_dir: Some(root.join("tune")),
        // Fast retries so the suite spends its budget on chaos, not sleep.
        retry: RetryPolicy {
            max_attempts: 3,
            base_delay: Duration::from_millis(1),
            max_delay: Duration::from_millis(4),
            seed: 7,
        },
        // Well past the 10% floor the acceptance criterion demands.
        store_faults: Some(FaultConfig {
            transient_rate: 0.20,
            permanent_rate: 0.05,
            torn_write_rate: 0.08,
            latency: Some((Duration::ZERO, Duration::from_millis(2))),
            seed: 20200118,
        }),
        ..ServeConfig::default()
    }
}

fn temp_root(tag: &str) -> std::path::PathBuf {
    let root = std::env::temp_dir().join(format!("fraz-serve-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    root
}

#[test]
fn store_fault_storm_yields_exactly_one_typed_outcome_per_job() {
    let root = temp_root("storm");
    let handle = start(chaos_config(&root)).expect("server starts under chaos config");
    let addr = handle.local_addr().to_string();

    const THREADS: usize = 4;
    const JOBS_PER_THREAD: usize = 12;
    let outcomes = AtomicU64::new(0);
    // key -> blob for every put the server *acknowledged*.
    let acked: Mutex<Vec<(String, Vec<u8>)>> = Mutex::new(Vec::new());
    let degraded_evidence = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let addr = &addr;
            let outcomes = &outcomes;
            let acked = &acked;
            let degraded_evidence = &degraded_evidence;
            scope.spawn(move || {
                let fields = workload_fields(24, 40 + t as u64);
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_reply_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for j in 0..JOBS_PER_THREAD {
                    let reply = match j % 4 {
                        // A put whose blob is reconstructible from (t, j).
                        0 => {
                            let key = format!("chaos-{t}-{j}");
                            let blob: Vec<u8> = (0..256)
                                .map(|i| ((t * 7 + j * 13 + i) % 256) as u8)
                                .collect();
                            let reply = client.put(&key, blob.clone()).expect("typed reply");
                            match &reply {
                                Response::Stored { degraded } => {
                                    if *degraded {
                                        degraded_evidence.fetch_add(1, Ordering::Relaxed);
                                    }
                                    acked
                                        .lock()
                                        .unwrap_or_else(|p| p.into_inner())
                                        .push((key, blob));
                                }
                                Response::IoFailed { .. } => {
                                    degraded_evidence.fetch_add(1, Ordering::Relaxed);
                                }
                                other => panic!("put answered {:?}", other.kind()),
                            }
                            reply
                        }
                        // Read back something this thread already stored.
                        1 => {
                            let candidates = {
                                let acked = acked.lock().unwrap_or_else(|p| p.into_inner());
                                acked.last().cloned()
                            };
                            match candidates {
                                Some((key, blob)) => {
                                    let reply = client.get(&key).expect("typed reply");
                                    match &reply {
                                        Response::Blob(read) => assert_eq!(
                                            read, &blob,
                                            "acked blob must read back byte-exact"
                                        ),
                                        Response::IoFailed { .. } => {
                                            degraded_evidence.fetch_add(1, Ordering::Relaxed);
                                        }
                                        other => panic!("get answered {:?}", other.kind()),
                                    }
                                    reply
                                }
                                None => client.status().expect("typed reply"),
                            }
                        }
                        // A compress whose blob must decode to shape.
                        2 => {
                            let dataset = &fields[j % fields.len()];
                            let reply = client
                                .compress("sz", dataset, 6.0, 0.5, 0)
                                .expect("typed reply");
                            match &reply {
                                Response::Compressed { blob, .. } => {
                                    let codec = fraz_pressio::registry::build(
                                        "sz",
                                        &fraz_pressio::Options::new(),
                                    )
                                    .unwrap();
                                    let decoded =
                                        codec.decompress(blob).expect("acked blob decodes");
                                    assert_eq!(decoded.dims, dataset.dims);
                                }
                                other => panic!("compress answered {:?}", other.kind()),
                            }
                            reply
                        }
                        // A near-zero deadline: DeadlineExceeded is a
                        // success of the robustness layer, not a failure.
                        _ => {
                            let dataset = &fields[j % fields.len()];
                            let reply = client
                                .compress("sz", dataset, 6.0, 0.5, 1)
                                .expect("typed reply");
                            assert!(
                                matches!(
                                    reply,
                                    Response::Compressed { .. } | Response::DeadlineExceeded { .. }
                                ),
                                "deadline job answered {:?}",
                                reply.kind()
                            );
                            reply
                        }
                    };
                    let _ = reply;
                    outcomes.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
    });

    // Exactly one outcome per issued job.
    assert_eq!(
        outcomes.load(Ordering::Relaxed),
        (THREADS * JOBS_PER_THREAD) as u64
    );

    // Every acknowledged put — including ones that degraded to the
    // fallback — reads back byte-exact through a fresh connection.
    let mut fresh = Client::connect(&addr).unwrap();
    fresh
        .set_reply_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let acked = acked.into_inner().unwrap_or_else(|p| p.into_inner());
    assert!(!acked.is_empty(), "the storm must acknowledge some puts");
    for (key, blob) in &acked {
        // The fault schedule keeps injecting during readback; an injected
        // error rolls fresh on retry, while a genuinely lost or torn blob
        // would fail every attempt.
        let mut read = None;
        for _ in 0..10 {
            match fresh.get(key).expect("typed reply") {
                Response::Blob(bytes) => {
                    read = Some(bytes);
                    break;
                }
                Response::IoFailed { .. } => continue,
                other => panic!("get `{key}` answered {:?}", other.kind()),
            }
        }
        assert_eq!(
            read.as_ref(),
            Some(blob),
            "`{key}` must survive the chaos byte-exact"
        );
    }

    // The storm really injected (the schedule is seed-deterministic, so
    // this does not flake): permanent failures leave visible degradation.
    let status = handle.status();
    assert!(
        status.degraded || degraded_evidence.load(Ordering::Relaxed) > 0,
        "fault schedule produced no observable degradation — chaos did not bite"
    );

    let report = handle.join();
    assert!(report.tune_cache_flushed, "drain must flush the tune cache");
    assert!(report.status.jobs_ok > 0);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn choppy_client_sockets_cannot_wedge_the_server() {
    let root = temp_root("choppy");
    let handle = start(chaos_config(&root)).expect("server starts");
    let addr = handle.local_addr().to_string();

    const CLIENTS: usize = 6;
    let replies = AtomicU64::new(0);
    let breaks = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = &addr;
            let replies = &replies;
            let breaks = &breaks;
            scope.spawn(move || {
                let stream = std::net::TcpStream::connect(addr.as_str()).expect("connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                // Chop reads and writes, and hard-close after a per-client
                // byte budget so some connections die mid-frame.
                let mut wire = FaultyStream::new(
                    stream,
                    StreamFaults {
                        close_after_bytes: Some(2048 + 512 * c as u64),
                        ..StreamFaults::choppy(90 + c as u64)
                    },
                );
                let fields = workload_fields(16, 300 + c as u64);
                for j in 0..50usize {
                    let request = if j % 3 == 0 {
                        Request::Status
                    } else {
                        Request::Compress {
                            deadline_ms: 0,
                            target_ratio: 4.0,
                            tolerance: 0.5,
                            codec: "sz".into(),
                            dataset: fields[j % fields.len()].clone(),
                        }
                    };
                    if write_frame(&mut wire, &request.encode()).is_err() {
                        breaks.fetch_add(1, Ordering::Relaxed);
                        return;
                    }
                    match read_frame(&mut wire, MAX_FRAME_LEN) {
                        Ok(payload) => {
                            Response::decode(&payload).expect("typed reply");
                            replies.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            breaks.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    }
                }
            });
        }
    });

    // The byte budgets guarantee mid-frame deaths; fragmentation must not
    // have cost a single intact exchange.
    assert!(breaks.load(Ordering::Relaxed) > 0, "no socket ever broke");
    assert!(replies.load(Ordering::Relaxed) > 0, "no exchange succeeded");

    // The server shrugs it all off: a clean client still gets service.
    let mut fresh = Client::connect(&addr).unwrap();
    fresh
        .set_reply_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let fields = workload_fields(16, 1);
    match fresh
        .compress("sz", &fields[0], 4.0, 0.5, 0)
        .expect("typed reply")
    {
        Response::Compressed { .. } => {}
        other => panic!("post-storm compress answered {:?}", other.kind()),
    }
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn broken_tune_cache_degrades_to_cold_searches() {
    let root = temp_root("tunebroke");
    // Point the tune cache at a *file*: open must fail, the server must
    // come up anyway and report itself degraded.
    let not_a_dir = root.join("cache-file");
    std::fs::write(&not_a_dir, b"occupied").unwrap();
    let handle = start(ServeConfig {
        workers: 1,
        tune_cache_dir: Some(not_a_dir),
        ..ServeConfig::default()
    })
    .expect("server starts despite a broken tune cache");
    let addr = handle.local_addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    client
        .set_reply_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    match client.status().expect("typed reply") {
        Response::Status(status) => assert!(status.degraded, "degradation must be visible"),
        other => panic!("status answered {:?}", other.kind()),
    }
    let fields = workload_fields(16, 2);
    match client
        .compress("sz", &fields[0], 4.0, 0.5, 0)
        .expect("typed reply")
    {
        Response::Compressed { .. } => {}
        other => panic!("cold compress answered {:?}", other.kind()),
    }
    let report = handle.join();
    assert!(
        report.tune_cache_flushed,
        "no cache to flush is a clean flush"
    );
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn job_deadlines_return_best_so_far_under_load() {
    let root = temp_root("deadline");
    let handle = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = handle.local_addr().to_string();

    let deadline_hits = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..3u64 {
            let addr = &addr;
            let deadline_hits = &deadline_hits;
            scope.spawn(move || {
                let fields = workload_fields(64, 500 + t);
                let mut client = Client::connect(addr).expect("connect");
                client
                    .set_reply_timeout(Some(Duration::from_secs(30)))
                    .unwrap();
                for j in 0..8usize {
                    let reply = client
                        .compress("sz", &fields[j % fields.len()], 8.0, 0.2, 1)
                        .expect("typed reply");
                    match reply {
                        Response::DeadlineExceeded { evaluations, .. } => {
                            deadline_hits.fetch_add(1, Ordering::Relaxed);
                            // Best-so-far means the search at least
                            // started; the count is bounded, not huge.
                            assert!(evaluations < 10_000);
                        }
                        Response::Compressed { .. } => {}
                        other => panic!("deadline job answered {:?}", other.kind()),
                    }
                }
            });
        }
    });
    assert!(
        deadline_hits.load(Ordering::Relaxed) > 0,
        "1 ms deadlines on 64x64 turbulence must fire at least once"
    );
    let status = handle.status();
    assert_eq!(status.jobs_ok + status.jobs_deadline, 24);
    handle.join();
    let _ = std::fs::remove_dir_all(&root);
}
