//! A work-stealing scoped thread pool for the FRaZ search and orchestrator.
//!
//! The FRaZ task graph has two nested levels of parallelism: independent
//! *field* searches (paper Algorithm 3) and, inside each field, the
//! region-parallel *training* race (Algorithm 2).  Spawning fresh OS threads
//! per level per batch made the tuning harness itself the throughput
//! bottleneck at scale, so this crate provides one long-lived pool both
//! levels share:
//!
//! * every worker owns a local deque — tasks spawned *from* a worker go to
//!   its own deque (popped LIFO for locality) and idle workers steal from
//!   the opposite end (FIFO), in the spirit of rayon's core loop,
//! * tasks spawned from outside the pool land in a global injector queue,
//! * idle workers park on a condvar and are woken by pushes (a long
//!   fallback timeout — not polling — is the only other wake-up source),
//! * [`Pool::scope`] is **re-entrant**: when a task running *on* a worker
//!   opens a scope and waits for its sub-tasks, the worker keeps executing
//!   its own deque's tasks instead of blocking, so nested field→region
//!   scopes on one pool can neither deadlock nor oversubscribe the
//!   machine — while *not* absorbing unrelated stolen work into the
//!   waiting scope's wall-clock.
//!
//! The environment has no crates.io access, so everything here is built on
//! `std::sync` primitives only — no crossbeam deques, no rayon.
//!
//! Users of the pool: `FixedRatioSearch` (region tasks), the
//! `Orchestrator` (field tasks nesting region tasks), and the `fraz` CLI
//! (quality-search tasks side by side with a whole ratio application on
//! one budget) — see ARCHITECTURE.md's threading notes for the full map.
//!
//! # Example
//!
//! Scopes may borrow from the enclosing stack frame, exactly like
//! [`std::thread::scope`], and nest freely:
//!
//! ```
//! use fraz_pool::Pool;
//!
//! let pool = Pool::new(4);
//! let inputs = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
//! let mut squares = vec![0u64; inputs.len()];
//! let pool = &pool;
//! pool.scope(|s| {
//!     for (out, &x) in squares.iter_mut().zip(&inputs) {
//!         s.spawn(move || {
//!             // A nested scope on the same pool is fine: the worker helps
//!             // run queued tasks while it waits.
//!             pool.scope(|inner| inner.spawn(|| *out = x * x));
//!         });
//!     }
//! });
//! assert_eq!(squares, vec![1, 4, 9, 16, 25, 36, 49, 64]);
//! ```

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::marker::PhantomData;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;
use std::time::Duration;

/// A queued unit of work.  Lifetimes are erased on the way in
/// ([`Scope::spawn`]) and re-validated by the scope barrier on the way out:
/// `Pool::scope` never returns before every task it spawned has finished.
type Task = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// `(pool identity, worker index)` of the current thread, if it is a
    /// pool worker.  The identity is the address of the pool's `Shared`
    /// allocation, which is stable for the pool's whole life.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

/// How long a parked worker sleeps before re-scanning the queues.  The
/// condvar protocol below makes lost wakeups impossible (pushes notify
/// while holding the parking lock, sleepers re-check every queue under
/// it), so this is purely a belt-and-braces bound on scheduling oddities;
/// it is long enough that an idle pool's wakeups are negligible (2/s per
/// worker).
const PARK_TIMEOUT: Duration = Duration::from_millis(500);

/// How long a worker waiting for one of *its own* scopes sleeps between
/// checks once its local deque is empty.  Completion is condvar-notified,
/// and nothing can enter the local deque while the worker waits, so like
/// `PARK_TIMEOUT` this is only a safety net.
const HELP_TIMEOUT: Duration = Duration::from_millis(50);

/// State shared between the pool handle and its workers.
struct Shared {
    /// Global injector queue: tasks submitted from non-worker threads.
    /// Its mutex doubles as the parking lock for `wakeup`.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker local deques: owner pushes/pops the back, thieves and
    /// the owner-after-local-miss pop the front.
    locals: Vec<Mutex<VecDeque<Task>>>,
    /// Parked workers wait here (paired with the `injector` mutex).
    wakeup: Condvar,
    /// Set once, by `Pool::drop`.
    shutdown: AtomicBool,
}

impl Shared {
    /// The pool identity used to recognize worker threads.
    fn id(&self) -> usize {
        self as *const Shared as usize
    }

    /// The calling thread's worker index in *this* pool, if any.
    fn current_worker(&self) -> Option<usize> {
        WORKER.with(|w| match w.get() {
            Some((pool, index)) if pool == self.id() => Some(index),
            _ => None,
        })
    }

    /// Pop the next runnable task: own deque (LIFO), then the injector,
    /// then steal from the other workers (FIFO), scanning from the slot
    /// after ours so thieves spread out instead of mobbing worker 0.
    fn find_task(&self, me: Option<usize>) -> Option<Task> {
        if let Some(i) = me {
            if let Some(task) = lock(&self.locals[i]).pop_back() {
                return Some(task);
            }
        }
        if let Some(task) = lock(&self.injector).pop_front() {
            return Some(task);
        }
        let n = self.locals.len();
        let start = me.map_or(0, |i| i + 1);
        for offset in 0..n {
            let victim = (start + offset) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(task) = lock(&self.locals[victim]).pop_front() {
                return Some(task);
            }
        }
        None
    }

    /// True if any queue holds a task.  Callers must hold the injector
    /// lock so the check pairs atomically with going to sleep.
    fn any_queued(&self, injector: &VecDeque<Task>) -> bool {
        !injector.is_empty() || self.locals.iter().any(|q| !lock(q).is_empty())
    }

    /// Enqueue a task: to the submitting worker's own deque when called
    /// from a pool thread; otherwise to the deque of the worker that
    /// *opened* the scope (`home`), so a scope opened on a worker can be
    /// fed from foreign threads and still be drained by its opener's
    /// helping loop; otherwise to the injector.  Always wakes a parked
    /// worker *while holding the injector lock*, which is what makes the
    /// sleep/wake handshake race-free.
    fn push(&self, home: Option<usize>, task: Task) {
        match self.current_worker().or(home) {
            Some(i) => {
                lock(&self.locals[i]).push_back(task);
                let _parking = lock(&self.injector);
                self.wakeup.notify_one();
            }
            None => {
                let mut injector = lock(&self.injector);
                injector.push_back(task);
                self.wakeup.notify_one();
            }
        }
    }
}

/// Lock a mutex, ignoring poisoning (tasks catch their own panics, so a
/// poisoned queue mutex can only mean a panic in this crate's own tiny
/// critical sections; the queues remain structurally valid either way).
fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((shared.id(), index))));
    loop {
        if let Some(task) = shared.find_task(Some(index)) {
            task();
            continue;
        }
        let guard = lock(&shared.injector);
        if shared.shutdown.load(Ordering::Acquire) {
            // Queues are drained (the scan above came up empty and scopes
            // cannot outlive the pool), so it is safe to leave.
            break;
        }
        if shared.any_queued(&guard) {
            continue; // something arrived between the scan and the lock
        }
        let _ = shared.wakeup.wait_timeout(guard, PARK_TIMEOUT);
    }
}

/// Completion barrier for one scope.
#[derive(Default)]
struct ScopeState {
    /// Tasks spawned but not yet finished.
    pending: AtomicUsize,
    /// Pairs with `done` for external waiters.
    sync: Mutex<()>,
    done: Condvar,
    /// First panic payload observed in a spawned task.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
}

impl ScopeState {
    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = lock(&self.panic);
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Mark one task finished, waking waiters when it was the last.
    fn complete_one(&self) {
        if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _guard = lock(&self.sync);
            self.done.notify_all();
        }
    }

    /// Block (no helping) until every spawned task has finished.  Used by
    /// threads that are not workers of the pool.
    fn wait_external(&self) {
        let mut guard = lock(&self.sync);
        while self.pending.load(Ordering::Acquire) != 0 {
            guard = self
                .done
                .wait(guard)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Wait as a pool worker: keep executing tasks from **our own local
    /// deque** until the scope drains.  This is what makes nested scopes
    /// on one pool deadlock-free even with a single worker: everything
    /// this scope spawned from this thread sits in our deque (or was
    /// already stolen by a worker that will finish it), so draining our
    /// deque always makes progress on our own scope.
    ///
    /// Deliberately *no* stealing of foreign work here: a waiting scope
    /// that picked up an unrelated task (say, a whole other field's
    /// series) could not close until that task finished, which would
    /// corrupt per-field/search `elapsed` timings — the paper's §VI-B3
    /// "longest field" metric — with stolen work.  If our sub-tasks were
    /// all stolen, we briefly park instead; other threads never push into
    /// our deque, so only scope completion can change our state.
    fn wait_helping(&self, shared: &Shared, me: usize) {
        while self.pending.load(Ordering::Acquire) != 0 {
            // Pop as a statement so the deque guard drops before the task
            // runs (the task may push new spawns onto this same deque).
            let task = lock(&shared.locals[me]).pop_back();
            if let Some(task) = task {
                task();
                continue;
            }
            let guard = lock(&self.sync);
            if self.pending.load(Ordering::Acquire) == 0 {
                return;
            }
            // Completion is notified through `done`; the timeout is only a
            // belt-and-braces re-scan.
            let _ = self.done.wait_timeout(guard, HELP_TIMEOUT);
        }
    }
}

/// A scope handle passed to the closure of [`Pool::scope`].
///
/// Tasks spawned on a scope may borrow anything that outlives the
/// `Pool::scope` call, exactly like [`std::thread::scope`]; the scope does
/// not end until every task has run to completion.
pub struct Scope<'scope> {
    shared: Arc<Shared>,
    state: Arc<ScopeState>,
    /// The worker that opened the scope, if any.  Spawns coming from
    /// threads outside the pool are routed to this worker's deque so the
    /// opener's helping loop can always drain its own scope — without
    /// this, a `Scope` handed to a foreign thread (it is `Send + Sync`)
    /// would feed the injector, which helping loops deliberately do not
    /// touch, and the scope could never close.
    home: Option<usize>,
    /// Invariant in `'scope`, as for `std::thread::Scope`: covariance
    /// would let a scope be coerced to a shorter lifetime and accept
    /// borrows that die before its tasks do.
    marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Submit `task` to the pool.  It may run on any worker, at any time
    /// before the enclosing [`Pool::scope`] call returns.
    ///
    /// Panics inside `task` are caught and re-thrown from `Pool::scope`
    /// after the whole scope has drained (first panic wins), so one
    /// region's failure cannot leave sibling borrows dangling.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.state.pending.fetch_add(1, Ordering::AcqRel);
        let state = Arc::clone(&self.state);
        let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                state.record_panic(payload);
            }
            state.complete_one();
        });
        // SAFETY: the queues require 'static tasks, but `Pool::scope`
        // blocks until `pending` reaches zero before returning — even when
        // its closure panics — so every borrow captured by `wrapped`
        // (lifetime 'scope) strictly outlives the task's execution.  This
        // is the same lifetime-erasure-behind-a-barrier argument as
        // `std::thread::scope` / rayon's `Scope`.
        let erased: Task =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Task>(wrapped) };
        self.shared.push(self.home, erased);
    }
}

/// A fixed-size work-stealing thread pool with scoped, nestable spawns.
///
/// Workers are spawned once, in [`Pool::new`]; running any number of
/// scopes afterwards creates **zero** OS threads.  Dropping the pool joins
/// all workers.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    /// Workers requested but never spawned (thread exhaustion at `new`).
    failed_workers: usize,
}

impl Pool {
    /// Create a pool with `threads` workers; `0` means one per available
    /// hardware thread.
    ///
    /// Worker-spawn failure (thread exhaustion under load) degrades instead
    /// of aborting: the pool runs with the workers that did spawn and
    /// reports the shortfall via [`Pool::failed_workers`].  Even a pool
    /// whose *every* spawn failed stays usable — [`Pool::scope`] then runs
    /// its tasks inline on the calling thread.
    pub fn new(threads: usize) -> Self {
        Self::new_with_spawner(threads, |index, shared| {
            std::thread::Builder::new()
                .name(format!("fraz-pool-{index}"))
                .spawn(move || worker_loop(shared, index))
        })
    }

    fn new_with_spawner(
        threads: usize,
        mut spawn: impl FnMut(usize, Arc<Shared>) -> std::io::Result<JoinHandle<()>>,
    ) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4)
        } else {
            threads
        };
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            wakeup: Condvar::new(),
            shutdown: AtomicBool::new(false),
        });
        let mut handles = Vec::with_capacity(threads);
        let mut failed_workers = 0usize;
        for index in 0..threads {
            // Indices must stay aligned with `locals`, so a failed slot is
            // skipped, not re-numbered; its (empty) deque is scanned by
            // thieves but never fed — `push` only routes to live workers.
            match spawn(index, Arc::clone(&shared)) {
                Ok(handle) => handles.push(handle),
                Err(_) => failed_workers += 1,
            }
        }
        Self {
            shared,
            handles,
            failed_workers,
        }
    }

    /// Number of live worker threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Number of requested workers that could not be spawned (thread
    /// exhaustion).  Non-zero means the pool is running degraded; daemons
    /// should surface this as a warning.
    pub fn failed_workers(&self) -> usize {
        self.failed_workers
    }

    /// True when the calling thread is one of this pool's workers — i.e.
    /// a `scope` opened here would be re-entrant.
    pub fn is_worker_thread(&self) -> bool {
        self.shared.current_worker().is_some()
    }

    /// Run `op` with a [`Scope`] on which tasks can be spawned, and block
    /// until **all** of them have completed.
    ///
    /// May be called from any thread.  On a non-worker thread the caller
    /// parks while the workers drain the scope; on a worker thread (a
    /// nested scope) the caller *helps*, executing queued tasks itself, so
    /// re-entrant use neither deadlocks nor idles a core.
    ///
    /// If `op` or any spawned task panics, the panic is re-thrown here —
    /// but only after every task of the scope has finished, preserving the
    /// borrow-safety barrier.
    pub fn scope<'scope, OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce(&Scope<'scope>) -> R,
    {
        let scope = Scope {
            home: self.shared.current_worker(),
            shared: Arc::clone(&self.shared),
            state: Arc::new(ScopeState::default()),
            marker: PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| op(&scope)));
        // The barrier must hold even when `op` itself panicked: tasks it
        // already spawned still borrow `'scope` data.
        match self.shared.current_worker() {
            Some(me) => scope.state.wait_helping(&self.shared, me),
            None if self.handles.is_empty() => {
                // Fully-degraded pool (every worker spawn failed): nobody
                // else will ever drain the queues, so run the scope's tasks
                // inline here.  Spawns from this thread land in the injector
                // (it is not a worker), so `find_task` always sees them.
                while scope.state.pending.load(Ordering::Acquire) != 0 {
                    match self.shared.find_task(None) {
                        Some(task) => task(),
                        None => std::thread::yield_now(),
                    }
                }
            }
            None => scope.state.wait_external(),
        }
        let task_panic = lock(&scope.state.panic).take();
        match result {
            Err(op_panic) => resume_unwind(op_panic),
            Ok(value) => {
                if let Some(payload) = task_panic {
                    resume_unwind(payload);
                }
                value
            }
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        {
            let _parking = lock(&self.shared.injector);
            self.shared.wakeup.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// The process-wide shared pool, sized to the machine's available
/// parallelism and created on first use.
///
/// [`FixedRatioSearch`](https://docs.rs/fraz-core) instances that were not
/// given an explicit pool run their region tasks here, so standalone
/// searches never re-spawn OS threads per call either.
pub fn global() -> &'static Pool {
    static GLOBAL: OnceLock<Pool> = OnceLock::new();
    GLOBAL.get_or_init(|| Pool::new(0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task_and_borrows_stack_data() {
        let pool = Pool::new(3);
        let inputs: Vec<u64> = (0..64).collect();
        let mut outputs = vec![0u64; inputs.len()];
        pool.scope(|s| {
            for (out, &x) in outputs.iter_mut().zip(&inputs) {
                s.spawn(move || *out = x + 1);
            }
        });
        assert!(outputs.iter().zip(&inputs).all(|(o, i)| *o == i + 1));
        assert_eq!(pool.threads(), 3);
    }

    #[test]
    fn empty_scope_returns_immediately() {
        let pool = Pool::new(2);
        let value = pool.scope(|_| 41) + 1;
        assert_eq!(value, 42);
    }

    #[test]
    fn nested_scopes_on_a_single_worker_cannot_deadlock() {
        // The canary for the re-entrant guarantee: with ONE worker, a task
        // that opens an inner scope can only finish if the worker executes
        // the inner tasks itself while waiting.
        let pool = Pool::new(1);
        let mut result = 0u64;
        pool.scope(|outer| {
            outer.spawn(|| {
                let mut partial = [0u64; 4];
                pool.scope(|inner| {
                    for (i, slot) in partial.iter_mut().enumerate() {
                        inner.spawn(move || *slot = (i as u64 + 1) * 10);
                    }
                });
                result = partial.iter().sum();
            });
        });
        assert_eq!(result, 100);
    }

    #[test]
    fn deeply_nested_scopes_complete() {
        let pool = Pool::new(2);
        let counter = AtomicU64::new(0);
        pool.scope(|a| {
            for _ in 0..4 {
                a.spawn(|| {
                    pool.scope(|b| {
                        for _ in 0..4 {
                            b.spawn(|| {
                                pool.scope(|c| {
                                    for _ in 0..4 {
                                        c.spawn(|| {
                                            counter.fetch_add(1, Ordering::Relaxed);
                                        });
                                    }
                                });
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn concurrent_scopes_from_many_external_threads() {
        let pool = Pool::new(4);
        let total = AtomicU64::new(0);
        std::thread::scope(|threads| {
            for _ in 0..6 {
                threads.spawn(|| {
                    for _ in 0..10 {
                        let mut acc = 0u64;
                        pool.scope(|s| {
                            let acc = &mut acc;
                            s.spawn(move || *acc += 7);
                        });
                        total.fetch_add(acc, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 6 * 10 * 7);
    }

    #[test]
    fn task_panic_propagates_after_the_scope_drains() {
        let pool = Pool::new(2);
        let finished = AtomicU64::new(0);
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("task boom"));
                for _ in 0..8 {
                    s.spawn(|| {
                        finished.fetch_add(1, Ordering::Relaxed);
                    });
                }
            });
        }));
        assert!(outcome.is_err(), "the task panic must re-throw");
        // The barrier held: every sibling ran to completion first.
        assert_eq!(finished.load(Ordering::Relaxed), 8);
        // And the pool survives for the next scope.
        let mut ok = false;
        pool.scope(|s| s.spawn(|| ok = true));
        assert!(ok);
    }

    #[test]
    fn foreign_threads_can_feed_a_worker_opened_scope() {
        // A Scope is Send + Sync, so a task may hand it to threads outside
        // the pool.  Their spawns are routed to the opening worker's deque
        // (not the injector), so the opener's helping loop can drain the
        // scope — with ONE worker this would otherwise hang forever.
        let pool = Pool::new(1);
        let hits = AtomicU64::new(0);
        pool.scope(|outer| {
            outer.spawn(|| {
                pool.scope(|inner| {
                    std::thread::scope(|threads| {
                        for _ in 0..3 {
                            threads.spawn(|| {
                                for _ in 0..5 {
                                    inner.spawn(|| {
                                        hits.fetch_add(1, Ordering::Relaxed);
                                    });
                                }
                            });
                        }
                    });
                });
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn worker_identity_is_visible_inside_tasks() {
        let pool = Pool::new(2);
        let other = Pool::new(1);
        assert!(!pool.is_worker_thread());
        let mut seen = (false, false);
        pool.scope(|s| {
            let seen = &mut seen;
            s.spawn(|| *seen = (pool.is_worker_thread(), other.is_worker_thread()));
        });
        assert_eq!(seen, (true, false), "workers belong to exactly one pool");
    }

    #[test]
    fn zero_thread_request_falls_back_to_available_parallelism() {
        let pool = Pool::new(0);
        assert!(pool.threads() >= 1);
    }

    #[test]
    fn partial_spawn_failure_degrades_and_still_completes_scopes() {
        let refuse = |index: usize| index % 2 == 1;
        let pool = Pool::new_with_spawner(4, |index, shared| {
            if refuse(index) {
                Err(std::io::Error::other("thread limit reached"))
            } else {
                std::thread::Builder::new().spawn(move || worker_loop(shared, index))
            }
        });
        assert_eq!(pool.threads(), 2);
        assert_eq!(pool.failed_workers(), 2);
        let mut outputs = vec![0u64; 32];
        pool.scope(|s| {
            for (i, out) in outputs.iter_mut().enumerate() {
                s.spawn(move || *out = i as u64 * 3);
            }
        });
        assert!(outputs.iter().enumerate().all(|(i, o)| *o == i as u64 * 3));
    }

    #[test]
    fn total_spawn_failure_runs_scopes_inline() {
        // Thread exhaustion at its worst: zero workers.  Scopes must still
        // complete (inline on the caller), including nested spawns.
        let pool = Pool::new_with_spawner(3, |_, _| Err(std::io::Error::other("no threads left")));
        assert_eq!(pool.threads(), 0);
        assert_eq!(pool.failed_workers(), 3);
        let counter = AtomicU64::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                    pool.scope(|inner| {
                        inner.spawn(|| {
                            counter.fetch_add(10, Ordering::Relaxed);
                        });
                    });
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 88);
        drop(pool); // joins nothing, must not hang
    }

    #[test]
    fn healthy_pool_reports_zero_failed_workers() {
        let pool = Pool::new(2);
        assert_eq!(pool.failed_workers(), 0);
    }

    #[test]
    fn drop_joins_all_workers() {
        let pool = Pool::new(3);
        let mut hits = vec![false; 16];
        pool.scope(|s| {
            for slot in hits.iter_mut() {
                s.spawn(move || *slot = true);
            }
        });
        drop(pool); // must not hang
        assert!(hits.iter().all(|h| *h));
    }
}
