//! Property tests: random subregion reads round-trip within the per-chunk
//! tuned bound for every rank (1-D/2-D/3-D), both dtypes (f32/f64) and every
//! absolute-error builtin codec (sz, zfp, szx).
//!
//! Each case derives a field shape, chunk shape, codec, dtype, error bound
//! and request region from the sampled integers, writes the field through
//! [`write_array`], reads the region back, and checks every element of the
//! subregion against the source — the error must stay within the bound
//! recorded for the chunk the element came from.

use std::ops::Range;

use proptest::prelude::*;

use fraz_data::{Dataset, Dims};
use fraz_store::{write_array, ArrayReader, ChunkTarget, MemoryStore, StoreWriteConfig};

const CODECS: [&str; 3] = ["sz", "zfp", "szx"];

/// Deterministic pseudo-random values: a seeded LCG smoothed with a short
/// moving average so every codec can actually compress the field.
fn field_values(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed | 1;
    let raw: Vec<f64> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f64 / (1u64 << 31) as f64 - 0.5) * 200.0
        })
        .collect();
    (0..n)
        .map(|i| {
            let lo = i.saturating_sub(3);
            let window = &raw[lo..=i];
            window.iter().sum::<f64>() / window.len() as f64
        })
        .collect()
}

fn build_dataset(dims: &[usize], seed: u64, f64_values: bool) -> Dataset {
    let n: usize = dims.iter().product();
    let values = field_values(n, seed);
    if f64_values {
        Dataset::from_f64("prop", "field", 0, Dims::new(dims), values)
    } else {
        let values: Vec<f32> = values.iter().map(|&v| v as f32).collect();
        Dataset::from_f32("prop", "field", 0, Dims::new(dims), values)
    }
}

/// Write with a fixed per-chunk-clamped bound, read `region` back, and
/// assert the subregion honours each source chunk's recorded bound.
fn check_roundtrip(dims: &[usize], chunk: &[usize], region: &[Range<u64>], seed: u64) {
    let codec = CODECS[(seed % 3) as usize];
    let f64_values = (seed >> 2) % 2 == 1;
    let dataset = build_dataset(dims, seed, f64_values);
    let range = dataset.stats().value_range();
    let bound = range * [1e-3, 1e-2, 5e-2][((seed >> 4) % 3) as usize];

    let store = MemoryStore::new();
    let config = StoreWriteConfig::new(chunk.to_vec(), codec, ChunkTarget::FixedBound(bound));
    let report = write_array(&store, "prop", &dataset, &config).unwrap();
    let reader = ArrayReader::open(&store, "prop").unwrap();
    assert_eq!(reader.meta().index.len(), report.chunks.len());

    let got = reader.read_region(region).unwrap();
    let shape: Vec<usize> = region.iter().map(|r| (r.end - r.start) as usize).collect();
    assert_eq!(got.dims.as_slice(), shape.as_slice());
    assert_eq!(got.buffer.dtype(), dataset.buffer.dtype());

    let grid = reader.grid();
    let src = dataset.buffer.to_f64_vec();
    let out = got.buffer.to_f64_vec();
    let src_dims = dataset.dims.as_slice();
    for (i, &value) in out.iter().enumerate() {
        // Global coordinates of element i of the region.
        let mut rem = i;
        let mut coords = vec![0usize; shape.len()];
        for axis in (0..shape.len()).rev() {
            coords[axis] = rem % shape[axis] + region[axis].start as usize;
            rem /= shape[axis];
        }
        let mut src_idx = 0usize;
        for (axis, &c) in coords.iter().enumerate() {
            src_idx = src_idx * src_dims[axis] + c;
        }
        // The bound that applies is the recorded bound of this element's
        // chunk (clamping can tighten it below the requested bound).
        let chunk_coords: Vec<usize> = coords
            .iter()
            .zip(grid.chunk_shape())
            .map(|(&c, &s)| c / s)
            .collect();
        let entry = reader.meta().index[grid.chunk_index(&chunk_coords)];
        let tolerance = entry.bound.max(bound) * (1.0 + 1e-6) + 1e-12;
        let err = (value - src[src_idx]).abs();
        assert!(
            err <= tolerance,
            "codec {codec}, f64 {f64_values}: element {i} at {coords:?} \
             err {err} > bound {} (requested {bound})",
            entry.bound
        );
    }
}

fn span(start: u64, len: u64, dim: usize) -> Range<u64> {
    let start = start % dim as u64;
    let end = (start + 1 + len % (dim as u64 - start).max(1)).min(dim as u64);
    start..end
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn subregion_roundtrips_1d(
        dim in 24usize..96,
        chunk in 3usize..40,
        start in 0u64..96,
        len in 1u64..96,
        seed in 1u64..u64::MAX,
    ) {
        let region = [span(start, len, dim)];
        check_roundtrip(&[dim], &[chunk], &region, seed);
    }

    #[test]
    fn subregion_roundtrips_2d(
        rows in 6usize..28,
        cols in 6usize..28,
        chunk_r in 2usize..12,
        chunk_c in 2usize..12,
        rseed in 0u64..u64::MAX,
        seed in 1u64..u64::MAX,
    ) {
        let (start, len) = (rseed & 0xFFFF, (rseed >> 16) & 0xFFFF);
        let region = [span(start, len + 1, rows), span(rseed >> 32, (rseed >> 48) + 1, cols)];
        check_roundtrip(&[rows, cols], &[chunk_r, chunk_c], &region, seed);
    }

    #[test]
    fn subregion_roundtrips_3d(
        nz in 4usize..12,
        ny in 4usize..12,
        nx in 4usize..12,
        cseed in 0u64..u64::MAX,
        rseed in 0u64..u64::MAX,
        seed in 1u64..u64::MAX,
    ) {
        let chunk = [
            2 + (cseed % 4) as usize,
            2 + ((cseed >> 8) % 4) as usize,
            2 + ((cseed >> 16) % 4) as usize,
        ];
        let region = [
            span(rseed & 0xFF, (rseed >> 8 & 0xFF) + 1, nz),
            span(rseed >> 16 & 0xFF, (rseed >> 24 & 0xFF) + 1, ny),
            span(rseed >> 32 & 0xFF, (rseed >> 40 & 0xFF) + 1, nx),
        ];
        check_roundtrip(&[nz, ny, nx], &chunk, &region, seed);
    }
}
