//! The fidelity acceptance criterion: on a non-stationary field, per-chunk
//! tuned compression beats a monolithic single-bound run.
//!
//! A single absolute error bound cannot adapt to a field whose value scale
//! varies in space — FRaZ's monolithic search picks one `e` for the whole
//! field, so quiet regions (range 0.1) are digitized with the same absolute
//! error as loud ones (range 100) and lose all relative fidelity.  The store
//! writer instead runs a `FixedQualitySearch` (`PSNR >= P`, measured against
//! each chunk's own range) per chunk.
//!
//! The comparison is made at **equal-or-better overall compression ratio**:
//! the monolithic `FixedRatioSearch` is targeted at the ratio the per-chunk
//! run actually achieved (header and index overhead included, so the store
//! pays its own bookkeeping).  The fidelity metric is the worst per-chunk
//! *range-normalized* max error — absolute max error cannot distinguish the
//! two approaches (the monolithic bound trivially minimizes it), but
//! relative error is what non-stationary science data cares about and what
//! the per-chunk posture is for.

use fraz_core::{FixedRatioSearch, SearchConfig};
use fraz_data::{Dataset, Dims};
use fraz_pressio::registry;
use fraz_store::{write_array, ArrayReader, ChunkGrid, ChunkTarget, MemoryStore, StoreWriteConfig};

// Chunks of 1024 elements: large enough to amortize sz's fixed per-stream
// overhead (~180 bytes of Huffman tables), so the ratio comparison measures
// the bounds, not the bookkeeping.
const DIMS: [usize; 2] = [128, 128];
const CHUNK: [usize; 2] = [32, 32];

/// A smooth field whose amplitude varies by four orders of magnitude across
/// chunk-sized blocks — a caricature of Hurricane CLOUDf (quiet far field,
/// loud eyewall).
fn non_stationary_field() -> Dataset {
    let mut values = vec![0.0f32; DIMS[0] * DIMS[1]];
    for r in 0..DIMS[0] {
        for c in 0..DIMS[1] {
            let block = (r / CHUNK[0]) + (c / CHUNK[1]);
            let amplitude = 10f32.powi(block as i32 % 4 - 1); // 0.1, 1, 10, 100
            let x = c as f32 * 0.11;
            let y = r as f32 * 0.09;
            values[r * DIMS[1] + c] =
                amplitude * (x.sin() + (y * 1.3).cos() + 0.02 * (x * 2.7).sin() * y.sin());
        }
    }
    Dataset::from_f32("synthetic", "nonstationary", 0, Dims::new(&DIMS), values)
}

/// Worst over all chunks of (max abs error within the chunk) / (value range
/// of the chunk), plus the plain global max abs error for reporting.
fn fidelity(src: &Dataset, restored: &Dataset, grid: &ChunkGrid) -> (f64, f64) {
    let a = src.buffer.to_f64_vec();
    let b = restored.buffer.to_f64_vec();
    let mut worst_rel = 0.0f64;
    let mut worst_abs = 0.0f64;
    for idx in 0..grid.n_chunks() {
        let origin = grid.chunk_origin(idx);
        let shape = grid.chunk_shape_at(idx);
        let (mut lo, mut hi, mut err) = (f64::INFINITY, f64::NEG_INFINITY, 0.0f64);
        for dr in 0..shape[0] {
            for dc in 0..shape[1] {
                let i = (origin[0] + dr) * DIMS[1] + origin[1] + dc;
                lo = lo.min(a[i]);
                hi = hi.max(a[i]);
                err = err.max((a[i] - b[i]).abs());
            }
        }
        worst_abs = worst_abs.max(err);
        if hi > lo {
            worst_rel = worst_rel.max(err / (hi - lo));
        }
    }
    (worst_rel, worst_abs)
}

#[test]
fn per_chunk_tuning_beats_monolithic_at_equal_or_better_ratio() {
    let dataset = non_stationary_field();
    let grid = ChunkGrid::new(&DIMS, &CHUNK).unwrap();

    // Per-chunk: PSNR >= 50 dB per chunk, tuned independently.
    let store = MemoryStore::new();
    let config = StoreWriteConfig::new(CHUNK.to_vec(), "sz", ChunkTarget::MinPsnr(50.0))
        .with_max_iterations(14);
    let report = write_array(&store, "f", &dataset, &config).unwrap();
    assert!(
        report.chunks.iter().all(|c| c.feasible),
        "PSNR target unsatisfiable"
    );
    let reader = ArrayReader::open(&store, "f").unwrap();
    let restored_pc = reader.read_all().unwrap();
    let (rel_pc, abs_pc) = fidelity(&dataset, &restored_pc, &grid);
    let ratio_pc = report.compression_ratio; // header + index included

    // The tuned bounds must actually differ across chunks — that is the
    // whole mechanism (quiet chunks tighter in absolute terms).
    let (bound_lo, bound_hi) = report.bound_range();
    assert!(
        bound_hi / bound_lo > 10.0,
        "bounds did not adapt: {bound_lo}..{bound_hi}"
    );

    // Monolithic: one FixedRatioSearch over the whole field, targeted at
    // the ratio the per-chunk run achieved (equal-ratio comparison).
    let codec = registry::build_default("sz").unwrap();
    let search = FixedRatioSearch::new(codec, SearchConfig::new(ratio_pc, 0.10));
    let outcome = search.run(&dataset);
    assert!(
        outcome.feasible,
        "monolithic search infeasible at ratio {ratio_pc}"
    );
    let mono = registry::build_default("sz").unwrap();
    let payload = mono.compress(&dataset, outcome.error_bound).unwrap();
    let restored_mono = mono.decompress(&payload).unwrap();
    let ratio_mono = dataset.byte_size() as f64 / payload.len() as f64;
    let (rel_mono, abs_mono) = fidelity(&dataset, &restored_mono, &grid);

    println!(
        "per-chunk: ratio {ratio_pc:.2}, worst rel err {rel_pc:.3e}, abs {abs_pc:.3e} \
         | monolithic: ratio {ratio_mono:.2}, worst rel err {rel_mono:.3e}, abs {abs_mono:.3e}"
    );

    // Equal-or-better ratio: the per-chunk container (paying its own header
    // overhead) must compress at least as well as the monolithic stream,
    // modulo the search's own 10% acceptance window.
    assert!(
        ratio_pc >= ratio_mono * 0.90,
        "per-chunk ratio {ratio_pc:.2} fell below monolithic {ratio_mono:.2}"
    );
    // Strictly better worst-case relative fidelity: the monolithic bound is
    // dominated by the loud chunks, so the quiet chunks' normalized error
    // must be worse than the per-chunk 50 dB posture.  (The margin is
    // modest because the seeded quality search lands each chunk *at* the
    // 50 dB target instead of overshooting it — the slack the old cold
    // sweep left on the table now shows up as compression ratio instead.)
    assert!(
        rel_pc < rel_mono * 0.75,
        "per-chunk rel err {rel_pc:.3e} not strictly better than monolithic {rel_mono:.3e}"
    );
    // And the per-chunk run actually delivers its posture: worst chunk
    // relative error stays near the 50 dB promise e/R = sqrt(3)*10^(-50/20)
    // rather than drifting to whatever loose bound still measures >= 50 dB.
    let promised = 3f64.sqrt() * 10f64.powf(-50.0 / 20.0);
    assert!(
        rel_pc <= promised * 2.0,
        "per-chunk rel err {rel_pc:.3e} strays from the 50 dB posture {promised:.3e}"
    );
}
