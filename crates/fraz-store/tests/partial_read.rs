//! Partial-decode proof: `read_region` must fetch **exactly** the byte
//! ranges of the chunks intersecting the request — no other chunk, no
//! whole-object read — and the assembled subregion must match the source
//! within each chunk's tuned bound.

use std::collections::BTreeSet;
use std::ops::Range;

use fraz_data::synthetic;
use fraz_store::{
    write_array, ArrayReader, ChunkTarget, CountingStore, FsStore, MemoryStore, Store,
    StoreWriteConfig,
};

const BOUND: f64 = 0.05;

fn written_store() -> (CountingStore<MemoryStore>, fraz_data::Dataset) {
    let dataset = synthetic::hurricane(8, 16, 16, 1, 42).field("TCf", 0);
    let store = CountingStore::new(MemoryStore::new());
    let config = StoreWriteConfig::new(vec![4, 8, 8], "szx", ChunkTarget::FixedBound(BOUND));
    write_array(&store, "TCf/t0", &dataset, &config).unwrap();
    (store, dataset)
}

fn assert_within_bound(region: &[Range<u64>], got: &fraz_data::Dataset, src: &fraz_data::Dataset) {
    let dims = src.dims.as_slice();
    let got_values = got.buffer.to_f64_vec();
    let src_values = src.buffer.to_f64_vec();
    let shape: Vec<usize> = region.iter().map(|r| (r.end - r.start) as usize).collect();
    assert_eq!(got.dims.as_slice(), shape.as_slice());
    // Walk the region in row-major order and compare element-wise.
    let n: usize = shape.iter().product();
    for i in 0..n {
        let mut rem = i;
        let mut src_idx = 0usize;
        for axis in (0..shape.len()).rev() {
            let c = rem % shape[axis] + region[axis].start as usize;
            rem /= shape[axis];
            let stride: usize = dims[axis + 1..].iter().product();
            src_idx += c * stride;
        }
        let err = (got_values[i] - src_values[src_idx]).abs();
        assert!(
            err <= BOUND * (1.0 + 1e-9),
            "element {i}: |{} - {}| = {err} > {BOUND}",
            got_values[i],
            src_values[src_idx]
        );
    }
}

#[test]
fn read_region_touches_exactly_the_intersecting_chunks() {
    let (store, _) = written_store();
    let reader = ArrayReader::open(&store, "TCf/t0").unwrap();
    let grid = reader.grid().clone();
    let index = reader.meta().index.clone();

    // A slab crossing the chunk boundary on axis 0 only: chunks (0|1, y, x)
    // for all y, x -> all 8 chunks intersect rows 2..6? No: chunk axis 0 is
    // 4 wide, so 2..6 covers chunk rows 0 and 1 -> every chunk intersects.
    // Use a corner region instead: one chunk.
    for (region, expected) in [
        (vec![0..4u64, 0..8, 0..8], vec![0usize]),
        (vec![0..4, 0..8, 8..16], vec![1]),
        (vec![4..8, 8..16, 8..16], vec![7]),
        (vec![2..6, 0..8, 0..8], vec![0, 4]),
        (vec![0..4, 0..16, 0..8], vec![0, 2]),
        (vec![3..5, 7..9, 7..9], (0..8).collect::<Vec<_>>()),
        (vec![7..8, 15..16, 15..16], vec![7]),
    ] {
        store.clear();
        let got = reader.read_region(&region).unwrap();
        assert_eq!(
            got.len(),
            region
                .iter()
                .map(|r| (r.end - r.start) as usize)
                .product::<usize>()
        );
        let reads: BTreeSet<(String, u64, u64)> = store.reads().into_iter().collect();
        let expected_reads: BTreeSet<(String, u64, u64)> = expected
            .iter()
            .map(|&i| ("TCf/t0".to_string(), index[i].offset, index[i].length))
            .collect();
        assert_eq!(
            reads, expected_reads,
            "region {region:?} should read exactly chunks {expected:?}"
        );
        // And the chunk set must match the grid's own intersection math.
        assert_eq!(grid.chunks_intersecting(&region).unwrap(), expected);
    }
}

#[test]
fn open_reads_only_superblock_and_header() {
    let (store, _) = written_store();
    store.clear();
    let reader = ArrayReader::open(&store, "TCf/t0").unwrap();
    let header_len = store.size("TCf/t0").unwrap() - reader.meta().payload_bytes();
    // size() does not count as a ranged read; open issues exactly two.
    let reads = store.reads();
    assert_eq!(reads.len(), 2, "open issued {reads:?}");
    assert_eq!(reads[0], ("TCf/t0".to_string(), 0, 20));
    assert_eq!(reads[1], ("TCf/t0".to_string(), 20, header_len - 20));
}

#[test]
fn subregion_values_match_the_source_within_the_bound() {
    let (store, dataset) = written_store();
    let reader = ArrayReader::open(&store, "TCf/t0").unwrap();
    for region in [
        vec![0..8u64, 0..16, 0..16], // everything
        vec![2..6, 3..12, 5..13],    // straddles all chunk boundaries
        vec![7..8, 0..1, 15..16],    // single element
        vec![0..1, 0..16, 0..16],    // one plane
    ] {
        let got = reader.read_region(&region).unwrap();
        assert_within_bound(&region, &got, &dataset);
    }
}

#[test]
fn read_all_equals_full_region_read() {
    let (store, dataset) = written_store();
    let reader = ArrayReader::open(&store, "TCf/t0").unwrap();
    let all = reader.read_all().unwrap();
    assert_eq!(all.dims.as_slice(), dataset.dims.as_slice());
    let full = reader.read_region(&[0..8, 0..16, 0..16]).unwrap();
    assert_eq!(all.buffer, full.buffer);
    assert_eq!(all.application, "hurricane");
    assert_eq!(all.field, "TCf");
}

#[test]
fn invalid_regions_are_rejected() {
    let (store, _) = written_store();
    let reader = ArrayReader::open(&store, "TCf/t0").unwrap();
    assert!(reader.read_region(&[0..8, 0..16]).is_err()); // wrong rank
    assert!(reader.read_region(&[0..9, 0..16, 0..16]).is_err()); // out of bounds
    assert!(reader.read_region(&[4..4, 0..16, 0..16]).is_err()); // empty
    assert!(reader.read_chunk(8).is_err()); // chunk index out of range
}

#[test]
fn fs_store_roundtrips_the_same_container() {
    let mut root = std::env::temp_dir();
    root.push(format!("fraz-store-partial-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let fs = FsStore::open(&root).unwrap();

    let dataset = synthetic::cesm(24, 32, 1, 9).field("FLDSC", 0);
    let range = dataset.stats().value_range();
    let config = StoreWriteConfig::new(vec![12, 16], "szx", ChunkTarget::FixedBound(range * 1e-2));
    let report = write_array(&fs, "FLDSC/t0", &dataset, &config).unwrap();
    assert_eq!(report.chunks.len(), 4);
    assert!(report.compression_ratio > 1.0);

    let reader = ArrayReader::open(&fs, "FLDSC/t0").unwrap();
    let strip = reader.read_region(&[10..14, 0..32]).unwrap();
    assert_eq!(strip.dims.as_slice(), &[4, 32]);
    let full = reader.read_all().unwrap();
    assert_eq!(full.len(), dataset.len());
    assert_eq!(fs.list().unwrap(), vec!["FLDSC/t0"]);
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn per_chunk_ratio_target_tunes_distinct_bounds() {
    // A ratio target runs an independent search per chunk; on a field whose
    // smoothness varies across space the converged bounds must differ.
    let dataset = synthetic::hurricane(8, 16, 16, 1, 7).field("CLOUDf", 0);
    let store = MemoryStore::new();
    let config = StoreWriteConfig::new(
        vec![4, 8, 8],
        "sz",
        ChunkTarget::Ratio {
            target_ratio: 8.0,
            tolerance: 0.15,
        },
    )
    .with_regions(4)
    .with_max_iterations(10);
    let report = write_array(&store, "CLOUDf/t0", &dataset, &config).unwrap();
    assert_eq!(report.chunks.len(), 8);
    assert!(report.evaluations > 0);
    let (lo, hi) = report.bound_range();
    assert!(lo > 0.0 && hi.is_finite());
    // The reader round-trips every chunk within its own recorded bound.
    let reader = ArrayReader::open(&store, "CLOUDf/t0").unwrap();
    let src = dataset.buffer.to_f64_vec();
    for (idx, entry) in reader.meta().index.iter().enumerate() {
        let chunk = reader.read_chunk(idx).unwrap();
        let origin = reader.grid().chunk_origin(idx);
        let shape = reader.grid().chunk_shape_at(idx);
        let got = chunk.buffer.to_f64_vec();
        let dims = dataset.dims.as_slice();
        for (i, &value) in got.iter().enumerate() {
            let c = [
                origin[0] + i / (shape[1] * shape[2]),
                origin[1] + (i / shape[2]) % shape[1],
                origin[2] + i % shape[2],
            ];
            let src_idx = (c[0] * dims[1] + c[1]) * dims[2] + c[2];
            assert!(
                (value - src[src_idx]).abs() <= entry.bound * (1.0 + 1e-9),
                "chunk {idx} element {i} violates its bound {}",
                entry.bound
            );
        }
    }
}
