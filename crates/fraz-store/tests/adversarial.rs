//! Adversarial-input tests for the container format: a corrupt or truncated
//! object must yield `Err` — never a panic, an abort, or an out-of-bounds
//! read.  Every assertion here is on `Err`; there is no `#[should_panic]`
//! anywhere because panicking *is* the failure mode under test (the same
//! posture as `fraz-szx`).

use fraz_data::synthetic;
use fraz_store::{
    write_array, ArrayReader, ChunkTarget, MemoryStore, Store, StoreError, StoreWriteConfig,
};

// Superblock layout (see crates/fraz-store/src/format.rs):
// magic u32 | version u8 | dtype u8 | ndims u8 | reserved u8 |
// header_len u32 | object_len u64
const OFF_MAGIC: usize = 0;
const OFF_VERSION: usize = 4;
const OFF_DTYPE: usize = 5;
const OFF_NDIMS: usize = 6;
const OFF_RESERVED: usize = 7;
const OFF_HEADER_LEN: usize = 8;
const OFF_OBJECT_LEN: usize = 12;
// Header body starts right after the superblock with ndims x u64 axes.
const OFF_AXIS0: usize = 20;
const OFF_CHUNK0: usize = 20 + 3 * 8; // 3-D container below

/// A small valid container over a 3-D field with 8 chunks.
fn valid_object() -> Vec<u8> {
    let dataset = synthetic::hurricane(4, 8, 8, 1, 11).field("TCf", 0);
    let store = MemoryStore::new();
    let config = StoreWriteConfig::new(vec![2, 4, 4], "szx", ChunkTarget::FixedBound(0.05));
    write_array(&store, "k", &dataset, &config).unwrap();
    store.get("k").unwrap()
}

/// Full strictness: opening must fail, and so must every read path that
/// could still be reached.
fn expect_corrupt(object: &[u8], what: &str) {
    let store = MemoryStore::new();
    store.put("k", object).unwrap();
    match ArrayReader::open(&store, "k") {
        Err(_) => {}
        Ok(reader) => {
            // Some payload corruptions leave the header intact; every chunk
            // and region read must then surface the damage as an Err.
            let any_ok = (0..reader.meta().index.len()).any(|i| reader.read_chunk(i).is_ok())
                && reader.read_all().is_ok();
            assert!(!any_ok, "{what}: decoded successfully");
        }
    }
}

fn patched(base: &[u8], offset: usize, bytes: &[u8]) -> Vec<u8> {
    let mut out = base.to_vec();
    out[offset..offset + bytes.len()].copy_from_slice(bytes);
    out
}

#[test]
fn empty_and_tiny_objects_are_errors() {
    for object in [vec![], vec![0x46], b"FRZS".to_vec(), vec![0u8; 19]] {
        expect_corrupt(&object, "tiny object");
    }
}

#[test]
fn every_truncated_prefix_is_an_error() {
    let object = valid_object();
    for cut in 0..object.len() {
        let store = MemoryStore::new();
        store.put("k", &object[..cut]).unwrap();
        let ok = match ArrayReader::open(&store, "k") {
            Err(_) => true,
            // object_len pins the total size, so open always fails; if it
            // ever didn't, reads must.
            Ok(reader) => reader.read_all().is_err(),
        };
        assert!(ok, "prefix of {cut}/{} bytes decoded", object.len());
    }
}

#[test]
fn trailing_garbage_is_an_error() {
    let mut object = valid_object();
    object.push(0);
    expect_corrupt(&object, "one trailing byte");
    object.extend_from_slice(&[0xAB; 64]);
    expect_corrupt(&object, "65 trailing bytes");
}

#[test]
fn bad_magic_version_and_reserved_are_errors() {
    let object = valid_object();
    expect_corrupt(
        &patched(&object, OFF_MAGIC, &0xDEAD_BEEFu32.to_le_bytes()),
        "wrong magic",
    );
    expect_corrupt(&patched(&object, OFF_VERSION, &[0]), "version 0");
    expect_corrupt(&patched(&object, OFF_VERSION, &[99]), "future version");
    expect_corrupt(&patched(&object, OFF_RESERVED, &[1]), "reserved byte set");
}

#[test]
fn bad_dtype_and_ndims_are_errors() {
    let object = valid_object();
    for dtype in [2u8, 7, 255] {
        expect_corrupt(&patched(&object, OFF_DTYPE, &[dtype]), "unknown dtype");
    }
    // Flipping f32 <-> f64 breaks the header CRC (the superblock is covered).
    expect_corrupt(&patched(&object, OFF_DTYPE, &[1]), "dtype flip");
    for ndims in [0u8, 5, 200] {
        expect_corrupt(&patched(&object, OFF_NDIMS, &[ndims]), "bad ndims");
    }
}

#[test]
fn bad_lengths_are_errors_not_allocations() {
    let object = valid_object();
    for header_len in [0u32, 3, u32::MAX] {
        expect_corrupt(
            &patched(&object, OFF_HEADER_LEN, &header_len.to_le_bytes()),
            "bad header_len",
        );
    }
    for object_len in [0u64, 19, u64::MAX] {
        expect_corrupt(
            &patched(&object, OFF_OBJECT_LEN, &object_len.to_le_bytes()),
            "bad object_len",
        );
    }
}

#[test]
fn bad_axes_and_chunk_shapes_are_errors() {
    let object = valid_object();
    // These all trip the header CRC at the latest; axis caps are also
    // checked before any allocation is sized by them.
    expect_corrupt(
        &patched(&object, OFF_AXIS0, &0u64.to_le_bytes()),
        "zero axis",
    );
    expect_corrupt(
        &patched(&object, OFF_AXIS0, &u64::MAX.to_le_bytes()),
        "huge axis",
    );
    expect_corrupt(
        &patched(&object, OFF_AXIS0, &(1u64 << 41).to_le_bytes()),
        "axis above cap",
    );
    expect_corrupt(
        &patched(&object, OFF_CHUNK0, &0u64.to_le_bytes()),
        "zero chunk axis",
    );
    expect_corrupt(
        &patched(&object, OFF_CHUNK0, &64u64.to_le_bytes()),
        "chunk axis above field axis",
    );
}

#[test]
fn every_single_byte_flip_is_caught() {
    // The header is CRC-pinned and every payload has its own CRC32, so —
    // unlike the checksum-less szx stream — *any* single-bit corruption
    // anywhere in the object must surface as an error on open or on read.
    let object = valid_object();
    for pos in 0..object.len() {
        for flip in [0x01u8, 0xFF] {
            let mut copy = object.clone();
            copy[pos] ^= flip;
            expect_corrupt(&copy, &format!("flip {flip:#x} at {pos}"));
        }
    }
}

#[test]
fn random_garbage_objects_never_panic() {
    let mut state = 0x0BAD_5EED_u64;
    for len in [1usize, 7, 20, 64, 256, 4096] {
        for _ in 0..50 {
            let garbage: Vec<u8> = (0..len)
                .map(|_| {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    (state >> 33) as u8
                })
                .collect();
            let store = MemoryStore::new();
            store.put("k", &garbage).unwrap();
            let _ = ArrayReader::open(&store, "k").map(|r| r.read_all());
        }
    }
}

#[test]
fn payload_corruption_is_caught_by_the_chunk_crc() {
    let object = valid_object();
    let store = MemoryStore::new();
    store.put("k", &object).unwrap();
    let reader = ArrayReader::open(&store, "k").unwrap();
    let entry = reader.meta().index[3];
    drop(reader);

    // Flip one payload byte of chunk 3: only reads touching chunk 3 fail.
    let corrupted = patched(
        &object,
        entry.offset as usize + entry.length as usize / 2,
        &[!object[entry.offset as usize + entry.length as usize / 2]],
    );
    store.put("k", &corrupted).unwrap();
    let reader = ArrayReader::open(&store, "k").unwrap();
    match reader.read_chunk(3) {
        Err(StoreError::Corrupt(msg)) => assert!(msg.contains("CRC"), "unexpected: {msg}"),
        other => panic!("chunk 3 should fail its CRC, got {other:?}"),
    }
    assert!(reader.read_all().is_err());
    // Chunks that do not include the damage still decode.
    assert!(reader.read_chunk(0).is_ok());
}
