//! Wire-format compatibility: the container layout is pinned by committed
//! fixtures.  If an intentional format change breaks these tests, bump
//! `format::VERSION` and regenerate with:
//!
//! ```text
//! cargo test -p fraz-store --test format_compat -- --ignored regenerate
//! ```
//!
//! (same posture as `fraz-szx` and `fraz-lossless`).

use std::path::PathBuf;

use fraz_data::{synthetic, Dataset};
use fraz_pressio::Options;
use fraz_store::{write_array, ArrayReader, ChunkTarget, MemoryStore, Store, StoreWriteConfig};

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// The fixture inputs: deterministic synthetic fields and fixed bounds, so
/// the container bytes are reproducible on every machine.
fn cases() -> Vec<(&'static str, Dataset, StoreWriteConfig)> {
    let hurricane = synthetic::hurricane(4, 8, 8, 1, 2020).field("CLOUDf", 0);
    let cesm = synthetic::cesm(12, 16, 1, 77).field("FLDSC", 0);
    vec![
        (
            "hurricane_szx.frzs",
            hurricane.clone(),
            StoreWriteConfig::new(vec![2, 4, 4], "szx", ChunkTarget::FixedBound(0.02)),
        ),
        (
            "hurricane_sz_options.frzs",
            hurricane,
            StoreWriteConfig::new(vec![4, 4, 8], "sz", ChunkTarget::FixedBound(0.01))
                .with_options(Options::new().with("sz:block_size", 8u64)),
        ),
        (
            "cesm_2d_szx.frzs",
            cesm,
            StoreWriteConfig::new(vec![6, 8], "szx", ChunkTarget::FixedBound(1.5)),
        ),
    ]
}

fn encode_case(dataset: &Dataset, config: &StoreWriteConfig) -> Vec<u8> {
    let store = MemoryStore::new();
    write_array(&store, "fixture", dataset, config).unwrap();
    store.get("fixture").unwrap()
}

#[test]
fn containers_reproduce_the_committed_fixtures_bit_for_bit() {
    for (name, dataset, config) in cases() {
        let expected = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); run the regenerate test"));
        let actual = encode_case(&dataset, &config);
        assert_eq!(
            actual, expected,
            "{name}: the writer no longer reproduces the committed container \
             — if the format change is intentional, bump format::VERSION and \
             regenerate the fixtures"
        );
    }
}

#[test]
fn committed_fixtures_decode_within_their_recorded_bounds() {
    for (name, dataset, config) in cases() {
        let object = std::fs::read(fixture_path(name))
            .unwrap_or_else(|e| panic!("missing fixture {name} ({e}); run the regenerate test"));
        let store = MemoryStore::new();
        store.put("fixture", &object).unwrap();
        let reader = ArrayReader::open(&store, "fixture").unwrap();
        assert_eq!(reader.meta().codec, config.codec);
        assert_eq!(reader.meta().dims, dataset.dims.as_slice());
        let restored = reader.read_all().unwrap();
        let src = dataset.buffer.to_f64_vec();
        let got = restored.buffer.to_f64_vec();
        let worst_bound = reader
            .meta()
            .index
            .iter()
            .fold(0.0f64, |acc, e| acc.max(e.bound));
        for (i, (&a, &b)) in src.iter().zip(&got).enumerate() {
            assert!(
                (a - b).abs() <= worst_bound * (1.0 + 1e-9),
                "{name}: element {i} violates the recorded bound"
            );
        }
    }
}

#[test]
#[ignore = "writes the committed fixtures; run explicitly after an intentional format change"]
fn regenerate() {
    let dir = fixture_path("");
    std::fs::create_dir_all(&dir).unwrap();
    for (name, dataset, config) in cases() {
        let object = encode_case(&dataset, &config);
        std::fs::write(fixture_path(name), &object).unwrap();
        println!("wrote {name}: {} bytes", object.len());
    }
}
