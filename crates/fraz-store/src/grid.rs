//! Regular chunk grid over an n-dimensional field.
//!
//! The grid divides a field of shape `dims` (slowest-varying axis first, the
//! same convention as [`fraz_data::Dims`]) into chunks of shape
//! `chunk_shape`.  Chunks on the trailing edge of an axis are clamped, so
//! every element belongs to exactly one chunk and no chunk is empty.  Chunks
//! are numbered row-major over the per-axis chunk counts, mirroring element
//! order.

use std::ops::Range;

use crate::StoreError;

/// A regular chunk grid: field shape, chunk shape, per-axis chunk counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChunkGrid {
    dims: Vec<usize>,
    chunk_shape: Vec<usize>,
    counts: Vec<usize>,
}

impl ChunkGrid {
    /// Build a grid over a field of shape `dims` with the given chunk shape.
    ///
    /// `chunk_shape` must have the same rank as `dims`; each chunk axis is
    /// clamped into `1..=dims[axis]` (a zero chunk axis is an error, an
    /// oversized one simply means a single chunk along that axis).
    pub fn new(dims: &[usize], chunk_shape: &[usize]) -> Result<Self, StoreError> {
        if dims.is_empty() || dims.len() > 4 {
            return Err(StoreError::InvalidRegion(format!(
                "grid rank must be 1..=4, got {}",
                dims.len()
            )));
        }
        if chunk_shape.len() != dims.len() {
            return Err(StoreError::InvalidRegion(format!(
                "chunk shape rank {} does not match field rank {}",
                chunk_shape.len(),
                dims.len()
            )));
        }
        if dims.iter().any(|&d| d == 0) {
            return Err(StoreError::InvalidRegion("zero-length axis".into()));
        }
        if chunk_shape.iter().any(|&c| c == 0) {
            return Err(StoreError::InvalidRegion("zero-length chunk axis".into()));
        }
        let chunk_shape: Vec<usize> = chunk_shape
            .iter()
            .zip(dims)
            .map(|(&c, &d)| c.min(d))
            .collect();
        let counts = dims
            .iter()
            .zip(&chunk_shape)
            .map(|(&d, &c)| d.div_ceil(c))
            .collect();
        Ok(Self {
            dims: dims.to_vec(),
            chunk_shape,
            counts,
        })
    }

    /// Field shape, slowest axis first.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Nominal (non-edge) chunk shape.
    pub fn chunk_shape(&self) -> &[usize] {
        &self.chunk_shape
    }

    /// Number of chunks along each axis.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Rank of the grid.
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Total number of chunks.
    pub fn n_chunks(&self) -> usize {
        self.counts.iter().product()
    }

    /// Per-axis chunk coordinates of chunk `idx` (row-major decomposition).
    pub fn chunk_coords(&self, idx: usize) -> Vec<usize> {
        debug_assert!(idx < self.n_chunks());
        let mut rem = idx;
        let mut coords = vec![0usize; self.counts.len()];
        for axis in (0..self.counts.len()).rev() {
            coords[axis] = rem % self.counts[axis];
            rem /= self.counts[axis];
        }
        coords
    }

    /// Linear chunk index of the given per-axis chunk coordinates.
    pub fn chunk_index(&self, coords: &[usize]) -> usize {
        debug_assert_eq!(coords.len(), self.counts.len());
        let mut idx = 0usize;
        for (axis, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.counts[axis]);
            idx = idx * self.counts[axis] + c;
        }
        idx
    }

    /// Element origin (slowest axis first) of chunk `idx`.
    pub fn chunk_origin(&self, idx: usize) -> Vec<usize> {
        self.chunk_coords(idx)
            .iter()
            .zip(&self.chunk_shape)
            .map(|(&c, &s)| c * s)
            .collect()
    }

    /// Actual shape of chunk `idx` (edge chunks are clamped to the field).
    pub fn chunk_shape_at(&self, idx: usize) -> Vec<usize> {
        self.chunk_origin(idx)
            .iter()
            .zip(self.chunk_shape.iter().zip(&self.dims))
            .map(|(&origin, (&chunk, &dim))| chunk.min(dim - origin))
            .collect()
    }

    /// Validate a requested region against the field shape.
    ///
    /// A region must have the grid's rank and every axis range must be
    /// non-empty and end within the axis.
    pub fn validate_region(&self, region: &[Range<u64>]) -> Result<(), StoreError> {
        if region.len() != self.dims.len() {
            return Err(StoreError::InvalidRegion(format!(
                "region rank {} does not match field rank {}",
                region.len(),
                self.dims.len()
            )));
        }
        for (axis, r) in region.iter().enumerate() {
            if r.start >= r.end {
                return Err(StoreError::InvalidRegion(format!(
                    "axis {axis}: empty range {}..{}",
                    r.start, r.end
                )));
            }
            if r.end > self.dims[axis] as u64 {
                return Err(StoreError::InvalidRegion(format!(
                    "axis {axis}: range {}..{} exceeds axis length {}",
                    r.start, r.end, self.dims[axis]
                )));
            }
        }
        Ok(())
    }

    /// Linear indices of every chunk that intersects `region`, in ascending
    /// order.  The region must already be valid (see
    /// [`validate_region`](Self::validate_region)).
    pub fn chunks_intersecting(&self, region: &[Range<u64>]) -> Result<Vec<usize>, StoreError> {
        self.validate_region(region)?;
        // Per-axis inclusive chunk-coordinate ranges.
        let spans: Vec<Range<usize>> = region
            .iter()
            .zip(&self.chunk_shape)
            .map(|(r, &c)| {
                let lo = (r.start as usize) / c;
                let hi = ((r.end - 1) as usize) / c;
                lo..hi + 1
            })
            .collect();
        let mut out = Vec::new();
        let mut coords: Vec<usize> = spans.iter().map(|s| s.start).collect();
        'outer: loop {
            out.push(self.chunk_index(&coords));
            // Row-major odometer over the spans.
            for axis in (0..coords.len()).rev() {
                coords[axis] += 1;
                if coords[axis] < spans[axis].end {
                    continue 'outer;
                }
                coords[axis] = spans[axis].start;
            }
            break;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_grid_has_expected_counts_and_shapes() {
        let grid = ChunkGrid::new(&[8, 16], &[4, 8]).unwrap();
        assert_eq!(grid.counts(), &[2, 2]);
        assert_eq!(grid.n_chunks(), 4);
        for idx in 0..4 {
            assert_eq!(grid.chunk_shape_at(idx), vec![4, 8]);
        }
        assert_eq!(grid.chunk_origin(3), vec![4, 8]);
    }

    #[test]
    fn edge_chunks_are_clamped() {
        let grid = ChunkGrid::new(&[10, 7], &[4, 4]).unwrap();
        assert_eq!(grid.counts(), &[3, 2]);
        assert_eq!(grid.chunk_shape_at(0), vec![4, 4]);
        assert_eq!(grid.chunk_shape_at(1), vec![4, 3]);
        assert_eq!(grid.chunk_shape_at(4), vec![2, 4]);
        assert_eq!(grid.chunk_shape_at(5), vec![2, 3]);
        // Every element is covered exactly once.
        let covered: usize = (0..grid.n_chunks())
            .map(|i| grid.chunk_shape_at(i).iter().product::<usize>())
            .sum();
        assert_eq!(covered, 70);
    }

    #[test]
    fn oversized_chunk_shape_collapses_to_one_chunk() {
        let grid = ChunkGrid::new(&[5, 5], &[100, 100]).unwrap();
        assert_eq!(grid.chunk_shape(), &[5, 5]);
        assert_eq!(grid.n_chunks(), 1);
    }

    #[test]
    fn coords_and_index_are_inverse() {
        let grid = ChunkGrid::new(&[9, 9, 9], &[2, 3, 4]).unwrap();
        for idx in 0..grid.n_chunks() {
            assert_eq!(grid.chunk_index(&grid.chunk_coords(idx)), idx);
        }
    }

    #[test]
    fn intersection_picks_exactly_the_overlapping_chunks() {
        let grid = ChunkGrid::new(&[8, 8], &[4, 4]).unwrap();
        assert_eq!(grid.chunks_intersecting(&[0..4, 0..4]).unwrap(), vec![0]);
        assert_eq!(
            grid.chunks_intersecting(&[0..8, 0..8]).unwrap(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(grid.chunks_intersecting(&[3..5, 0..4]).unwrap(), vec![0, 2]);
        assert_eq!(grid.chunks_intersecting(&[4..5, 3..5]).unwrap(), vec![2, 3]);
        // A single element touches a single chunk.
        assert_eq!(grid.chunks_intersecting(&[7..8, 7..8]).unwrap(), vec![3]);
    }

    #[test]
    fn invalid_regions_are_rejected() {
        let grid = ChunkGrid::new(&[8, 8], &[4, 4]).unwrap();
        assert!(grid.chunks_intersecting(&[0..8]).is_err());
        assert!(grid.chunks_intersecting(&[0..0, 0..8]).is_err());
        assert!(grid.chunks_intersecting(&[0..9, 0..8]).is_err());
        assert!(grid.chunks_intersecting(&[5..3, 0..8]).is_err());
    }

    #[test]
    fn bad_grids_are_rejected() {
        assert!(ChunkGrid::new(&[], &[]).is_err());
        assert!(ChunkGrid::new(&[4, 4], &[4]).is_err());
        assert!(ChunkGrid::new(&[4, 0], &[2, 2]).is_err());
        assert!(ChunkGrid::new(&[4, 4], &[2, 0]).is_err());
    }
}
