//! Retry with jittered exponential backoff for transient store failures.
//!
//! Networked and shared-filesystem backends fail *transiently* — an
//! interrupted syscall, a momentary timeout — and the right response is a
//! short, randomized wait and another attempt, not a failed job.
//! [`RetryStore`] decorates any [`Store`] with exactly that policy, keyed
//! off [`StoreError::is_transient`]: permanent errors (missing keys,
//! corrupt containers, permission failures) pass through untouched on the
//! first attempt, transient ones are retried up to
//! [`RetryPolicy::max_attempts`] times and only then surfaced — still as
//! the typed transient error, so callers can distinguish "gave up
//! retrying" from "never worth retrying".
//!
//! The jitter source is a seeded [`ChaCha8Rng`], so a test (or a chaos
//! run) with a fixed seed sees a reproducible retry schedule.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{Store, StoreError};

/// When and how often to retry a transient failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per operation (first try included).  `1` disables
    /// retrying.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each further retry.
    pub base_delay: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_delay: Duration,
    /// Seed for the jitter source (deterministic schedules in tests).
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_delay: Duration::from_millis(5),
            max_delay: Duration::from_millis(250),
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The jittered sleep before retry number `retry` (0-based): the
    /// exponential delay scaled by a uniform factor in `[0.5, 1.0)`, so
    /// concurrent clients that failed together do not retry in lockstep.
    fn backoff(&self, retry: u32, rng: &mut ChaCha8Rng) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_delay);
        exp.mul_f64(rng.gen_range(0.5..1.0))
    }
}

/// A [`Store`] decorator that retries transient failures with jittered
/// exponential backoff.
pub struct RetryStore<S> {
    inner: S,
    policy: RetryPolicy,
    rng: Mutex<ChaCha8Rng>,
    retries: AtomicU64,
    gave_up: AtomicU64,
}

impl<S: Store> RetryStore<S> {
    /// Wrap `inner` with the default policy.
    pub fn new(inner: S) -> Self {
        Self::with_policy(inner, RetryPolicy::default())
    }

    /// Wrap `inner` with an explicit policy.
    pub fn with_policy(inner: S, policy: RetryPolicy) -> Self {
        let rng = Mutex::new(ChaCha8Rng::seed_from_u64(policy.seed));
        Self {
            inner,
            policy,
            rng,
            retries: AtomicU64::new(0),
            gave_up: AtomicU64::new(0),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Total retry attempts performed (not counting first tries).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Operations that exhausted every attempt and surfaced the transient
    /// error to the caller.
    pub fn gave_up(&self) -> u64 {
        self.gave_up.load(Ordering::Relaxed)
    }

    fn run<T>(&self, mut op: impl FnMut(&S) -> Result<T, StoreError>) -> Result<T, StoreError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last = None;
        for retry in 0..attempts {
            if retry > 0 {
                let delay = {
                    let mut rng = self.rng.lock().unwrap_or_else(|p| p.into_inner());
                    self.policy.backoff(retry - 1, &mut rng)
                };
                std::thread::sleep(delay);
                self.retries.fetch_add(1, Ordering::Relaxed);
            }
            match op(&self.inner) {
                Ok(value) => return Ok(value),
                Err(e) if e.is_transient() => last = Some(e),
                Err(e) => return Err(e),
            }
        }
        self.gave_up.fetch_add(1, Ordering::Relaxed);
        Err(last.expect("loop ran at least once"))
    }
}

impl<S: Store> Store for RetryStore<S> {
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        self.run(|s| s.get(key))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.run(|s| s.get_range(key, offset, len))
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.run(|s| s.put(key, value))
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.run(|s| s.list())
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        self.run(|s| s.size(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MemoryStore;
    use std::sync::atomic::AtomicU32;

    /// Fails the first `fail_first` calls (transiently or permanently),
    /// then delegates.
    struct FlakyStore {
        inner: MemoryStore,
        fail_first: AtomicU32,
        transient: bool,
    }

    impl FlakyStore {
        fn new(fail_first: u32, transient: bool) -> Self {
            Self {
                inner: MemoryStore::new(),
                fail_first: AtomicU32::new(fail_first),
                transient,
            }
        }

        fn maybe_fail(&self) -> Result<(), StoreError> {
            let left = self.fail_first.load(Ordering::Relaxed);
            if left > 0 {
                self.fail_first.store(left - 1, Ordering::Relaxed);
                return Err(if self.transient {
                    StoreError::Transient("injected".into())
                } else {
                    StoreError::Io("injected".into())
                });
            }
            Ok(())
        }
    }

    impl Store for FlakyStore {
        fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
            self.maybe_fail()?;
            self.inner.get_range(key, offset, len)
        }
        fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
            self.maybe_fail()?;
            self.inner.put(key, value)
        }
        fn list(&self) -> Result<Vec<String>, StoreError> {
            self.maybe_fail()?;
            self.inner.list()
        }
        fn size(&self, key: &str) -> Result<u64, StoreError> {
            self.maybe_fail()?;
            self.inner.size(key)
        }
    }

    fn fast_policy(max_attempts: u32) -> RetryPolicy {
        RetryPolicy {
            max_attempts,
            base_delay: Duration::from_micros(50),
            max_delay: Duration::from_micros(500),
            seed: 7,
        }
    }

    #[test]
    fn transient_failures_are_retried_to_success() {
        let store = RetryStore::with_policy(FlakyStore::new(2, true), fast_policy(4));
        store.put("k", b"v").unwrap();
        assert_eq!(store.get("k").unwrap(), b"v");
        assert_eq!(store.retries(), 2);
        assert_eq!(store.gave_up(), 0);
    }

    #[test]
    fn permanent_failures_pass_through_immediately() {
        let store = RetryStore::with_policy(FlakyStore::new(1, false), fast_policy(4));
        assert!(matches!(store.put("k", b"v"), Err(StoreError::Io(_))));
        assert_eq!(store.retries(), 0, "permanent errors are never retried");
    }

    #[test]
    fn exhausted_attempts_surface_the_typed_transient_error() {
        let store = RetryStore::with_policy(FlakyStore::new(100, true), fast_policy(3));
        let err = store.put("k", b"v").unwrap_err();
        assert!(err.is_transient(), "give-up keeps the transient type");
        assert_eq!(store.retries(), 2, "attempts = 3 means 2 retries");
        assert_eq!(store.gave_up(), 1);
    }

    #[test]
    fn backoff_grows_and_is_jittered_within_bounds() {
        let policy = fast_policy(8);
        let mut rng = ChaCha8Rng::seed_from_u64(policy.seed);
        let mut prev_cap = Duration::ZERO;
        for retry in 0..6 {
            let d = policy.backoff(retry, &mut rng);
            let cap = policy
                .base_delay
                .saturating_mul(1 << retry)
                .min(policy.max_delay);
            assert!(d >= cap.mul_f64(0.5) && d < cap, "retry {retry}: {d:?}");
            assert!(cap >= prev_cap);
            prev_cap = cap;
        }
    }

    #[test]
    fn not_found_is_not_retried() {
        let store = RetryStore::with_policy(MemoryStore::new(), fast_policy(5));
        assert!(matches!(store.get("nope"), Err(StoreError::NotFound(_))));
        assert_eq!(store.retries(), 0);
    }
}
