//! Writing arrays: per-chunk tuned compression on the shared pool.
//!
//! [`write_array`] splits a dataset over a [`ChunkGrid`], compresses every
//! chunk independently as a task on [`fraz_pool`], and assembles the
//! container described in [`crate::format`].  Each chunk gets its **own**
//! error bound: a [`ChunkTarget::Ratio`] target runs a full
//! [`FixedRatioSearch`] per chunk, a [`ChunkTarget::MinPsnr`] target runs a
//! [`FixedQualitySearch`], and [`ChunkTarget::FixedBound`] skips the search
//! (useful for deterministic fixtures and raw-throughput benchmarks).
//!
//! Chunk searches are seeded through `fraz-core`'s
//! [`SearchHint`](fraz_core::SearchHint) layer.  Ratio chunks warm-start
//! from the most recently converged bound of the same write (a shared
//! [`LastConverged`] slot): time-adjacent and space-adjacent chunks of a
//! physical field usually want similar bounds, so the hint probe frequently
//! replaces the whole bracketing race with a single evaluation.  An
//! external [`BoundPredictor`] — typically the `fraz-tune` persistent cache
//! via [`write_array_seeded`] — is consulted *before* the warm-start slot
//! (its per-chunk fingerprints are more specific) and observes every
//! converged chunk bound, for both ratio and quality targets.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fraz_core::{
    BoundPredictor, FixedQualitySearch, FixedRatioSearch, HintSource, LastConverged,
    PredictorChain, QualityMetric, QualitySearchConfig, SearchConfig,
};
use fraz_data::Dataset;
use fraz_pool::Pool;
use fraz_pressio::{registry, Compressor, Options};

use crate::format::{self, ArrayMeta};
use crate::grid::ChunkGrid;
use crate::region;
use crate::store::Store;
use crate::StoreError;

/// What each chunk's compression is tuned for.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ChunkTarget {
    /// Compress every chunk at this absolute error-bound setting — no
    /// search.  Deterministic, so this is what the wire-format fixtures use.
    FixedBound(f64),
    /// Run a per-chunk [`FixedRatioSearch`] for this compression ratio.
    Ratio {
        /// Target compression ratio `ρt`.
        target_ratio: f64,
        /// Acceptable relative deviation `ε`.
        tolerance: f64,
    },
    /// Run a per-chunk [`FixedQualitySearch`] for `PSNR >= target` dB.
    ///
    /// PSNR is measured against each chunk's own value range, so this target
    /// adapts to non-stationary fields: quiet chunks get proportionally
    /// tighter absolute bounds than loud ones.
    MinPsnr(f64),
}

/// Configuration for [`write_array`].
#[derive(Debug, Clone, PartialEq)]
pub struct StoreWriteConfig {
    /// Chunk shape (same rank as the dataset; clamped per axis).
    pub chunk_shape: Vec<usize>,
    /// Registry name of the codec.
    pub codec: String,
    /// Codec options (validated by the registry at build time).
    pub options: Options,
    /// Per-chunk tuning target.
    pub target: ChunkTarget,
    /// Search regions per chunk (ratio targets only).  Chunks already run in
    /// parallel, so fewer regions than the paper's field-level default keeps
    /// the total task count proportionate.
    pub regions: usize,
    /// Maximum search evaluations per region (or per quality search).
    pub max_iterations: usize,
    /// Hard ceiling `U` on any chunk's error bound.
    pub max_error_bound: Option<f64>,
    /// Warm-start each chunk's ratio search from the most recently converged
    /// bound of this write (on by default).
    pub warm_start: bool,
}

impl StoreWriteConfig {
    /// A config with the given chunk shape, codec and target, and default
    /// search knobs (6 regions, 16 iterations, warm start on).
    pub fn new(chunk_shape: Vec<usize>, codec: impl Into<String>, target: ChunkTarget) -> Self {
        Self {
            chunk_shape,
            codec: codec.into(),
            options: Options::new(),
            target,
            regions: 6,
            max_iterations: 16,
            max_error_bound: None,
            warm_start: true,
        }
    }

    /// Builder-style setter for the codec options.
    pub fn with_options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// Builder-style setter for the per-chunk region count.
    pub fn with_regions(mut self, regions: usize) -> Self {
        self.regions = regions.max(1);
        self
    }

    /// Builder-style setter for the per-region iteration budget.
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations.max(1);
        self
    }

    /// Builder-style setter for the error-bound ceiling `U`.
    pub fn with_max_error_bound(mut self, bound: f64) -> Self {
        self.max_error_bound = Some(bound);
        self
    }

    /// Builder-style setter for warm-starting.
    pub fn with_warm_start(mut self, warm_start: bool) -> Self {
        self.warm_start = warm_start;
        self
    }
}

/// Telemetry for one written chunk.
#[derive(Debug, Clone, PartialEq)]
pub struct ChunkReport {
    /// Linear chunk index.
    pub index: usize,
    /// Element origin of the chunk.
    pub origin: Vec<usize>,
    /// Actual (edge-clamped) chunk shape.
    pub shape: Vec<usize>,
    /// The tuned error bound the chunk was compressed with.
    pub error_bound: f64,
    /// Compressed payload size.
    pub compressed_bytes: u64,
    /// Search evaluations spent on this chunk (0 for fixed bounds).
    pub evaluations: usize,
    /// False when the search could not satisfy its target on this chunk.
    pub feasible: bool,
}

/// Telemetry for a whole [`write_array`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct WriteReport {
    /// The key the container was stored under.
    pub key: String,
    /// Codec used.
    pub codec: String,
    /// Per-chunk telemetry, in chunk order.
    pub chunks: Vec<ChunkReport>,
    /// Uncompressed size of the array.
    pub uncompressed_bytes: u64,
    /// Sum of the compressed chunk payloads.
    pub payload_bytes: u64,
    /// Total container size (header + payloads).
    pub object_bytes: u64,
    /// `uncompressed_bytes / object_bytes` — the honest, header-inclusive
    /// ratio.
    pub compression_ratio: f64,
    /// Total search evaluations across all chunks.
    pub evaluations: usize,
    /// Whether warm-starting was enabled.
    pub warm_start: bool,
    /// Wall-clock time of the write.
    pub elapsed: Duration,
}

impl WriteReport {
    /// Smallest and largest tuned bound across the chunks.
    pub fn bound_range(&self) -> (f64, f64) {
        self.chunks
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), c| {
                (lo.min(c.error_bound), hi.max(c.error_bound))
            })
    }
}

struct ChunkOut {
    payload: Vec<u8>,
    bound: f64,
    evaluations: usize,
    feasible: bool,
}

/// The seeding state one write shares across its chunk tasks.
struct ChunkSeeds {
    /// For ratio chunks: external predictor (if any) chained in front of
    /// the per-write warm-start slot.
    ratio: PredictorChain,
    /// For quality chunks: the external predictor alone (quality searches
    /// already seed themselves analytically; the warm-start slot's ratio
    /// bounds would be meaningless for a PSNR target).
    external: Option<Arc<dyn BoundPredictor>>,
}

impl ChunkSeeds {
    fn new(config: &StoreWriteConfig, external: Option<Arc<dyn BoundPredictor>>) -> Self {
        let mut predictors: Vec<Arc<dyn BoundPredictor>> = Vec::new();
        if let Some(external) = &external {
            predictors.push(Arc::clone(external));
        }
        if config.warm_start {
            predictors.push(Arc::new(LastConverged::new(HintSource::WarmStart)));
        }
        Self {
            ratio: PredictorChain::new(predictors),
            external,
        }
    }
}

fn chunk_dataset(dataset: &Dataset, grid: &ChunkGrid, idx: usize) -> Dataset {
    let origin = grid.chunk_origin(idx);
    let shape = grid.chunk_shape_at(idx);
    Dataset {
        application: dataset.application.clone(),
        field: dataset.field.clone(),
        timestep: dataset.timestep,
        dims: fraz_data::Dims::new(&shape),
        buffer: region::extract_buffer(&dataset.buffer, dataset.dims.as_slice(), &origin, &shape),
    }
}

fn compress_chunk(
    codec: &Arc<dyn Compressor>,
    chunk: &Dataset,
    config: &StoreWriteConfig,
    pool: Option<&Arc<Pool>>,
    seeds: &ChunkSeeds,
) -> Result<ChunkOut, StoreError> {
    if !codec.supports_dims(&chunk.dims) {
        return Err(StoreError::Unsupported(format!(
            "codec {} does not support chunk dims {:?}",
            config.codec,
            chunk.dims.as_slice()
        )));
    }
    let (bound, evaluations, feasible) = match config.target {
        ChunkTarget::FixedBound(bound) => {
            // Clamp into this chunk's valid range: a near-constant chunk can
            // have a much smaller upper bound than the whole field, and a
            // bound the codec would reject must not fail the write.
            let (lo, hi) = codec.bound_range(chunk);
            (bound.clamp(lo, hi), 0, true)
        }
        ChunkTarget::Ratio {
            target_ratio,
            tolerance,
        } => {
            let mut search_config =
                SearchConfig::new(target_ratio, tolerance).with_regions(config.regions);
            search_config.max_iterations = config.max_iterations;
            search_config.max_error_bound = config.max_error_bound;
            search_config.measure_final_quality = false;
            let mut search = FixedRatioSearch::new(codec.clone(), search_config)
                .with_codec_config(config.options.signature());
            if let Some(pool) = pool {
                search = search.with_pool(pool.clone());
            }
            let outcome = if seeds.ratio.is_empty() {
                search.run(chunk)
            } else {
                search.run_with_predictor(chunk, &seeds.ratio)
            };
            (outcome.error_bound, outcome.evaluations, outcome.feasible)
        }
        ChunkTarget::MinPsnr(psnr) => {
            let mut search_config = QualitySearchConfig::new(QualityMetric::PsnrAtLeast(psnr));
            search_config.max_iterations = config.max_iterations;
            search_config.max_error_bound = config.max_error_bound;
            let mut search = FixedQualitySearch::new(codec.clone(), search_config)
                .with_codec_config(config.options.signature());
            if let Some(pool) = pool {
                search = search.with_pool(pool.clone());
            }
            let outcome = match &seeds.external {
                Some(external) => search.run_with_predictor(chunk, external.as_ref()),
                None => search.run(chunk),
            };
            (
                outcome.error_bound,
                outcome.evaluations,
                outcome.satisfiable,
            )
        }
    };
    let payload = codec
        .compress(chunk, bound)
        .map_err(|e| StoreError::Codec(format!("chunk compress failed: {e}")))?;
    Ok(ChunkOut {
        payload,
        bound,
        evaluations,
        feasible,
    })
}

fn write_array_impl(
    store: &dyn Store,
    key: &str,
    dataset: &Dataset,
    config: &StoreWriteConfig,
    pool: Option<Arc<Pool>>,
    external: Option<Arc<dyn BoundPredictor>>,
) -> Result<WriteReport, StoreError> {
    let start = Instant::now();
    let grid = ChunkGrid::new(dataset.dims.as_slice(), &config.chunk_shape)?;
    let codec: Arc<dyn Compressor> = registry::build_arc(&config.codec, &config.options)
        .map_err(|e| StoreError::Codec(e.to_string()))?;
    if let ChunkTarget::FixedBound(bound) = config.target {
        if !(bound.is_finite() && bound > 0.0) {
            return Err(StoreError::Codec(format!(
                "fixed bound must be finite and positive, got {bound}"
            )));
        }
    }

    let n_chunks = grid.n_chunks();
    let seeds = ChunkSeeds::new(config, external);
    let mut slots: Vec<Option<Result<ChunkOut, StoreError>>> = Vec::with_capacity(n_chunks);
    slots.resize_with(n_chunks, || None);
    {
        let grid = &grid;
        let codec = &codec;
        let seeds = &seeds;
        let search_pool = pool.as_ref();
        let scope_pool: &Pool = pool.as_deref().unwrap_or_else(|| fraz_pool::global());
        scope_pool.scope(|scope| {
            for (idx, slot) in slots.iter_mut().enumerate() {
                scope.spawn(move || {
                    let chunk = chunk_dataset(dataset, grid, idx);
                    *slot = Some(compress_chunk(codec, &chunk, config, search_pool, seeds));
                });
            }
        });
    }

    let mut payloads = Vec::with_capacity(n_chunks);
    let mut bounds = Vec::with_capacity(n_chunks);
    let mut chunks = Vec::with_capacity(n_chunks);
    let mut evaluations = 0usize;
    for (idx, slot) in slots.into_iter().enumerate() {
        let out = slot.expect("every chunk task fills its slot")?;
        evaluations += out.evaluations;
        chunks.push(ChunkReport {
            index: idx,
            origin: grid.chunk_origin(idx),
            shape: grid.chunk_shape_at(idx),
            error_bound: out.bound,
            compressed_bytes: out.payload.len() as u64,
            evaluations: out.evaluations,
            feasible: out.feasible,
        });
        bounds.push(out.bound);
        payloads.push(out.payload);
    }

    let meta = ArrayMeta {
        dtype: dataset.buffer.dtype(),
        dims: dataset.dims.as_slice().to_vec(),
        chunk_shape: grid.chunk_shape().to_vec(),
        timestep: dataset.timestep as u64,
        application: dataset.application.clone(),
        field: dataset.field.clone(),
        codec: config.codec.clone(),
        options: config.options.clone(),
        index: Vec::new(),
    };
    let object = format::encode(&meta, &bounds, &payloads)?;
    let object_bytes = object.len() as u64;
    store.put(key, &object)?;

    let uncompressed_bytes = dataset.byte_size() as u64;
    let payload_bytes = payloads.iter().map(|p| p.len() as u64).sum();
    Ok(WriteReport {
        key: key.to_string(),
        codec: config.codec.clone(),
        chunks,
        uncompressed_bytes,
        payload_bytes,
        object_bytes,
        compression_ratio: uncompressed_bytes as f64 / object_bytes as f64,
        evaluations,
        warm_start: config.warm_start,
        elapsed: start.elapsed(),
    })
}

/// Chunk, tune, compress and store `dataset` under `key`, running the chunk
/// tasks (and their searches) on the process-wide [`fraz_pool::global`]
/// pool.
pub fn write_array(
    store: &dyn Store,
    key: &str,
    dataset: &Dataset,
    config: &StoreWriteConfig,
) -> Result<WriteReport, StoreError> {
    write_array_impl(store, key, dataset, config, None, None)
}

/// [`write_array`] on an explicit shared pool (the CLI passes its
/// worker-bounded pool here).
pub fn write_array_on(
    store: &dyn Store,
    key: &str,
    dataset: &Dataset,
    config: &StoreWriteConfig,
    pool: Arc<Pool>,
) -> Result<WriteReport, StoreError> {
    write_array_impl(store, key, dataset, config, Some(pool), None)
}

/// [`write_array`] seeded by an external [`BoundPredictor`] — typically the
/// `fraz-tune` persistent cache, so repeat writes of the same fields start
/// each chunk search at the previously converged bound.  The predictor is
/// consulted before the per-write warm-start slot and observes every
/// converged chunk bound.
pub fn write_array_seeded(
    store: &dyn Store,
    key: &str,
    dataset: &Dataset,
    config: &StoreWriteConfig,
    pool: Option<Arc<Pool>>,
    predictor: Option<Arc<dyn BoundPredictor>>,
) -> Result<WriteReport, StoreError> {
    write_array_impl(store, key, dataset, config, pool, predictor)
}
