//! Reading arrays: header-first open, byte-range partial decode.
//!
//! [`ArrayReader::open`] issues exactly two ranged reads (superblock, then
//! header + index) and validates everything before trusting it.
//! [`ArrayReader::read_region`] computes the chunk set intersecting the
//! request, fetches **only those chunks' byte ranges**, CRC-checks and
//! decodes them in parallel on [`fraz_pool`], and assembles the subregion.
//! Chunks outside the request are never read — the partial-decode tests pin
//! this with a counting `Store`.

use std::ops::Range;
use std::sync::Arc;

use fraz_data::{DataBuffer, Dataset, Dims};
use fraz_pool::Pool;
use fraz_pressio::{registry, Compressor};

use crate::format::{self, ArrayMeta, SUPERBLOCK_LEN};
use crate::grid::ChunkGrid;
use crate::region;
use crate::store::Store;
use crate::StoreError;

/// A validated, opened container, ready to serve region reads.
pub struct ArrayReader<'a> {
    store: &'a dyn Store,
    key: String,
    meta: ArrayMeta,
    grid: ChunkGrid,
}

impl<'a> ArrayReader<'a> {
    /// Open and validate the container stored under `key`.
    ///
    /// Fails with [`StoreError::Corrupt`] on any malformed header, including
    /// a stored size that disagrees with the container's own `object_len`
    /// (which catches both truncation and trailing garbage without reading
    /// any payload).
    pub fn open(store: &'a dyn Store, key: &str) -> Result<Self, StoreError> {
        let size = store.size(key)?;
        if size < SUPERBLOCK_LEN as u64 {
            return Err(StoreError::corrupt(format!(
                "object is {size} bytes, smaller than the superblock"
            )));
        }
        let sb_bytes = store.get_range(key, 0, SUPERBLOCK_LEN as u64)?;
        let sb = format::decode_superblock(&sb_bytes)?;
        if sb.object_len != size {
            return Err(StoreError::corrupt(format!(
                "header claims {} bytes, store holds {size}",
                sb.object_len
            )));
        }
        let header = store.get_range(key, SUPERBLOCK_LEN as u64, sb.header_len as u64)?;
        let meta = format::decode_header(&sb, &sb_bytes, &header)?;
        let grid = ChunkGrid::new(&meta.dims, &meta.chunk_shape)
            .map_err(|e| StoreError::corrupt(format!("invalid grid: {e}")))?;
        Ok(Self {
            store,
            key: key.to_string(),
            meta,
            grid,
        })
    }

    /// The validated array metadata (dims, dtype, codec, per-chunk index).
    pub fn meta(&self) -> &ArrayMeta {
        &self.meta
    }

    /// The chunk grid of the container.
    pub fn grid(&self) -> &ChunkGrid {
        &self.grid
    }

    /// The key this reader was opened on.
    pub fn key(&self) -> &str {
        &self.key
    }

    fn codec(&self) -> Result<Arc<dyn Compressor>, StoreError> {
        registry::build_arc(&self.meta.codec, &self.meta.options)
            .map_err(|e| StoreError::Codec(e.to_string()))
    }

    /// Fetch, CRC-check, decode and validate one chunk.
    fn decode_chunk(&self, codec: &dyn Compressor, idx: usize) -> Result<Dataset, StoreError> {
        let entry = self.meta.index[idx];
        let payload = self
            .store
            .get_range(&self.key, entry.offset, entry.length)?;
        if format::crc32(&payload) != entry.crc32 {
            return Err(StoreError::corrupt(format!("chunk {idx}: CRC mismatch")));
        }
        let chunk = codec
            .decompress(&payload)
            .map_err(|e| StoreError::Corrupt(format!("chunk {idx}: decode failed: {e}")))?;
        let expected_shape = self.grid.chunk_shape_at(idx);
        if chunk.dims.as_slice() != expected_shape.as_slice() {
            return Err(StoreError::corrupt(format!(
                "chunk {idx}: payload dims {:?} do not match grid shape {expected_shape:?}",
                chunk.dims.as_slice()
            )));
        }
        if chunk.buffer.dtype() != self.meta.dtype {
            return Err(StoreError::corrupt(format!(
                "chunk {idx}: payload dtype does not match container dtype"
            )));
        }
        Ok(chunk)
    }

    /// Decode the subregion `region` (per-axis element ranges, slowest axis
    /// first), reading and decoding **only** the chunks it intersects.
    ///
    /// Chunk fetch+decode tasks run on the process-wide
    /// [`fraz_pool::global`] pool; see
    /// [`read_region_on`](Self::read_region_on) to use a specific pool.
    pub fn read_region(&self, region: &[Range<u64>]) -> Result<Dataset, StoreError> {
        self.read_region_impl(region, None)
    }

    /// [`read_region`](Self::read_region) on an explicit shared pool.
    pub fn read_region_on(
        &self,
        region: &[Range<u64>],
        pool: &Pool,
    ) -> Result<Dataset, StoreError> {
        self.read_region_impl(region, Some(pool))
    }

    fn read_region_impl(
        &self,
        region: &[Range<u64>],
        pool: Option<&Pool>,
    ) -> Result<Dataset, StoreError> {
        let chunk_ids = self.grid.chunks_intersecting(region)?;
        let codec = self.codec()?;
        let region_shape: Vec<usize> = region.iter().map(|r| (r.end - r.start) as usize).collect();
        let region_origin: Vec<usize> = region.iter().map(|r| r.start as usize).collect();

        // Fetch + decode in parallel, then scatter sequentially (the scatter
        // is a plain memcpy per row; decode dominates).
        let mut slots: Vec<Option<Result<Dataset, StoreError>>> = Vec::new();
        slots.resize_with(chunk_ids.len(), || None);
        {
            let codec = codec.as_ref();
            let scope_pool = pool.unwrap_or_else(|| fraz_pool::global());
            scope_pool.scope(|scope| {
                for (slot, &idx) in slots.iter_mut().zip(&chunk_ids) {
                    scope.spawn(move || {
                        *slot = Some(self.decode_chunk(codec, idx));
                    });
                }
            });
        }

        let n_values: usize = region_shape.iter().product();
        let mut out = match self.meta.dtype {
            fraz_data::DType::F32 => DataBuffer::F32(vec![0.0; n_values]),
            fraz_data::DType::F64 => DataBuffer::F64(vec![0.0; n_values]),
        };
        for (slot, &idx) in slots.into_iter().zip(&chunk_ids) {
            let chunk = slot.expect("every decode task fills its slot")?;
            let chunk_origin = self.grid.chunk_origin(idx);
            let chunk_shape = self.grid.chunk_shape_at(idx);
            // Intersection of the chunk's box with the request, in global
            // element coordinates.
            let isect_origin: Vec<usize> = chunk_origin
                .iter()
                .zip(&region_origin)
                .map(|(&c, &r)| c.max(r))
                .collect();
            let isect_shape: Vec<usize> = chunk_origin
                .iter()
                .zip(chunk_shape.iter().zip(region.iter()))
                .zip(&isect_origin)
                .map(|((&c, (&s, r)), &o)| ((c + s).min(r.end as usize)) - o)
                .collect();
            let within_chunk: Vec<usize> = isect_origin
                .iter()
                .zip(&chunk_origin)
                .map(|(&i, &c)| i - c)
                .collect();
            let within_region: Vec<usize> = isect_origin
                .iter()
                .zip(&region_origin)
                .map(|(&i, &r)| i - r)
                .collect();
            let piece =
                region::extract_buffer(&chunk.buffer, &chunk_shape, &within_chunk, &isect_shape);
            region::scatter_buffer(
                &mut out,
                &region_shape,
                &within_region,
                &piece,
                &isect_shape,
            );
        }

        Ok(Dataset {
            application: self.meta.application.clone(),
            field: self.meta.field.clone(),
            timestep: self.meta.timestep as usize,
            dims: Dims::new(&region_shape),
            buffer: out,
        })
    }

    /// Decode the whole array.
    pub fn read_all(&self) -> Result<Dataset, StoreError> {
        let region: Vec<Range<u64>> = self.meta.dims.iter().map(|&d| 0..d as u64).collect();
        self.read_region(&region)
    }

    /// Decode a single chunk by linear index.
    pub fn read_chunk(&self, idx: usize) -> Result<Dataset, StoreError> {
        if idx >= self.grid.n_chunks() {
            return Err(StoreError::InvalidRegion(format!(
                "chunk {idx} out of range (grid has {})",
                self.grid.n_chunks()
            )));
        }
        let codec = self.codec()?;
        self.decode_chunk(codec.as_ref(), idx)
    }
}
