//! The self-describing container format (`FRZS` version 1).
//!
//! One store object holds one compressed array.  The layout is designed for
//! ranged reads: a fixed 20-byte superblock, then a variable-length header
//! ending in a CRC32, then the chunk payloads back to back.  A reader needs
//! exactly two ranged reads (superblock, header) before it can fetch any
//! individual chunk by absolute offset.
//!
//! ```text
//! superblock (20 bytes):
//!   magic       u32  = "FRZS" (little-endian)
//!   version     u8   = 1
//!   dtype       u8   (0 = f32, 1 = f64)
//!   ndims       u8   (1..=4)
//!   reserved    u8   = 0
//!   header_len  u32  (bytes following the superblock, incl. header CRC)
//!   object_len  u64  (total container size; pins truncation/garbage)
//! header (header_len bytes):
//!   axes         ndims x u64   (slowest axis first)
//!   chunk_shape  ndims x u64   (1 <= chunk <= axis)
//!   timestep     u64
//!   application  str           (u16 length + UTF-8)
//!   field        str
//!   codec        str
//!   n_options    u16
//!   options      n_options x { key str, tag u8, value }
//!                tags: 0 f64 (8 bytes) | 1 u64 (8 bytes) | 2 bool (1 byte)
//!                      | 3 str; keys strictly ascending (canonical)
//!   n_chunks     u64            (must equal the grid's chunk count)
//!   index        n_chunks x { offset u64, length u64, bound f64, crc32 u32 }
//!   header_crc   u32            (CRC32 of superblock + header up to here)
//! payloads:
//!   chunk 0 .. chunk n-1, contiguous, in chunk order
//! ```
//!
//! Decoding validates *everything* before trusting it: magic/version, axis
//! caps (product <= 2^41, the same cap as `fraz-szx`), chunk-shape sanity,
//! canonical option ordering, exact header-cursor consumption, the header
//! CRC, and a strictly contiguous index whose last entry ends exactly at
//! `object_len`.  Any violation is [`StoreError::Corrupt`]; nothing panics
//! and no allocation is sized by unvalidated input.

use fraz_data::DType;
use fraz_pressio::{OptionValue, Options};

use crate::grid::ChunkGrid;
use crate::StoreError;

/// `"FRZS"` little-endian.
pub const MAGIC: u32 = u32::from_le_bytes(*b"FRZS");
/// Current container version.
pub const VERSION: u8 = 1;
/// Size of the fixed superblock.
pub const SUPERBLOCK_LEN: usize = 20;

/// Elements per array are capped at 2^41 (matches the `fraz-szx` cap).
const MAX_ELEMENTS: u64 = 1 << 41;
/// Strings (application, field, codec, option keys/values) are capped.
const MAX_STR_LEN: usize = 4096;
/// Number of codec options is capped.
const MAX_OPTIONS: usize = 64;
/// The header (everything after the superblock) is capped; with the chunk
/// count bounded by MAX_ELEMENTS this is generous but finite.
const MAX_HEADER_LEN: u64 = 1 << 28;

const INDEX_ENTRY_LEN: usize = 8 + 8 + 8 + 4;

/// Per-chunk index entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChunkEntry {
    /// Absolute byte offset of the chunk payload within the object.
    pub offset: u64,
    /// Payload length in bytes.
    pub length: u64,
    /// The tuned error bound this chunk was compressed with.
    pub bound: f64,
    /// CRC32 (IEEE) of the payload bytes.
    pub crc32: u32,
}

/// Everything the header describes about an array.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayMeta {
    /// Element type.
    pub dtype: DType,
    /// Field shape, slowest axis first.
    pub dims: Vec<usize>,
    /// Nominal chunk shape (edge chunks are clamped).
    pub chunk_shape: Vec<usize>,
    /// Time-step index of the source dataset.
    pub timestep: u64,
    /// Application name of the source dataset.
    pub application: String,
    /// Field name of the source dataset.
    pub field: String,
    /// Registry name of the codec the chunks were compressed with.
    pub codec: String,
    /// Codec options the writer used.
    pub options: Options,
    /// Per-chunk offset/length/bound/CRC index, in chunk order.
    pub index: Vec<ChunkEntry>,
}

impl ArrayMeta {
    /// The chunk grid this container describes.
    pub fn grid(&self) -> ChunkGrid {
        // Validated during decode/encode, so this cannot fail.
        ChunkGrid::new(&self.dims, &self.chunk_shape).expect("meta holds a valid grid")
    }

    /// Total compressed payload bytes across all chunks.
    pub fn payload_bytes(&self) -> u64 {
        self.index.iter().map(|e| e.length).sum()
    }

    /// Uncompressed size of the array in bytes.
    pub fn uncompressed_bytes(&self) -> u64 {
        self.dims.iter().map(|&d| d as u64).product::<u64>() * self.dtype.byte_width() as u64
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected, poly 0xEDB88320) — implemented locally so the
// store adds no dependency; the table is built at compile time.
// ---------------------------------------------------------------------------

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

fn put_str(out: &mut Vec<u8>, s: &str) -> Result<(), StoreError> {
    if s.len() > MAX_STR_LEN {
        return Err(StoreError::Unsupported(format!(
            "string of {} bytes exceeds the {MAX_STR_LEN}-byte cap",
            s.len()
        )));
    }
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
    Ok(())
}

/// Assemble a complete container object from metadata (whose `index` field
/// is ignored), the per-chunk bounds, and the per-chunk payloads.
pub fn encode(
    meta: &ArrayMeta,
    bounds: &[f64],
    payloads: &[Vec<u8>],
) -> Result<Vec<u8>, StoreError> {
    let grid = ChunkGrid::new(&meta.dims, &meta.chunk_shape)?;
    let n_chunks = grid.n_chunks();
    assert_eq!(bounds.len(), n_chunks, "one bound per chunk");
    assert_eq!(payloads.len(), n_chunks, "one payload per chunk");
    if meta.options.len() > MAX_OPTIONS {
        return Err(StoreError::Unsupported(format!(
            "{} codec options exceed the {MAX_OPTIONS}-option cap",
            meta.options.len()
        )));
    }

    let ndims = meta.dims.len();
    // Header body (everything between the superblock and the header CRC).
    let mut header = Vec::new();
    for &d in &meta.dims {
        header.extend_from_slice(&(d as u64).to_le_bytes());
    }
    for &c in grid.chunk_shape() {
        header.extend_from_slice(&(c as u64).to_le_bytes());
    }
    header.extend_from_slice(&meta.timestep.to_le_bytes());
    put_str(&mut header, &meta.application)?;
    put_str(&mut header, &meta.field)?;
    put_str(&mut header, &meta.codec)?;
    header.extend_from_slice(&(meta.options.len() as u16).to_le_bytes());
    for (key, value) in meta.options.iter() {
        put_str(&mut header, key)?;
        match value {
            OptionValue::F64(v) => {
                header.push(0);
                header.extend_from_slice(&v.to_le_bytes());
            }
            OptionValue::U64(v) => {
                header.push(1);
                header.extend_from_slice(&v.to_le_bytes());
            }
            OptionValue::Bool(v) => {
                header.push(2);
                header.push(u8::from(*v));
            }
            OptionValue::Str(v) => {
                header.push(3);
                put_str(&mut header, v)?;
            }
        }
    }
    header.extend_from_slice(&(n_chunks as u64).to_le_bytes());

    let header_len = header.len() + n_chunks * INDEX_ENTRY_LEN + 4;
    if header_len as u64 > MAX_HEADER_LEN {
        return Err(StoreError::Unsupported("header exceeds size cap".into()));
    }
    let data_start = SUPERBLOCK_LEN as u64 + header_len as u64;
    let payload_total: u64 = payloads.iter().map(|p| p.len() as u64).sum();
    let object_len = data_start + payload_total;

    let mut out = Vec::with_capacity(object_len as usize);
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(VERSION);
    out.push(match meta.dtype {
        DType::F32 => 0,
        DType::F64 => 1,
    });
    out.push(ndims as u8);
    out.push(0); // reserved
    out.extend_from_slice(&(header_len as u32).to_le_bytes());
    out.extend_from_slice(&object_len.to_le_bytes());
    out.extend_from_slice(&header);

    let mut offset = data_start;
    for (payload, &bound) in payloads.iter().zip(bounds) {
        out.extend_from_slice(&offset.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&bound.to_le_bytes());
        out.extend_from_slice(&crc32(payload).to_le_bytes());
        offset += payload.len() as u64;
    }
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    debug_assert_eq!(out.len(), data_start as usize);

    for payload in payloads {
        out.extend_from_slice(payload);
    }
    debug_assert_eq!(out.len() as u64, object_len);
    Ok(out)
}

// ---------------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------------

/// A bounds-checked little-endian cursor; every read is validated.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.data.len())
            .ok_or_else(|| StoreError::corrupt("header ends mid-field"))?;
        let slice = &self.data[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn str(&mut self) -> Result<String, StoreError> {
        let len = self.u16()? as usize;
        if len > MAX_STR_LEN {
            return Err(StoreError::corrupt("string length above cap"));
        }
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::corrupt("string is not UTF-8"))
    }
}

/// The validated superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuperBlock {
    /// Element type of the array.
    pub dtype: DType,
    /// Rank of the array (1..=4).
    pub ndims: usize,
    /// Length of the header that follows the superblock.
    pub header_len: u32,
    /// Total object size in bytes.
    pub object_len: u64,
}

/// Parse and validate the 20-byte superblock.
pub fn decode_superblock(bytes: &[u8]) -> Result<SuperBlock, StoreError> {
    if bytes.len() != SUPERBLOCK_LEN {
        return Err(StoreError::corrupt(format!(
            "superblock is {} bytes, expected {SUPERBLOCK_LEN}",
            bytes.len()
        )));
    }
    let mut cur = Cursor::new(bytes);
    if cur.u32()? != MAGIC {
        return Err(StoreError::corrupt("bad magic (not an FRZS container)"));
    }
    let version = cur.u8()?;
    if version != VERSION {
        return Err(StoreError::corrupt(format!(
            "unsupported container version {version}"
        )));
    }
    let dtype = match cur.u8()? {
        0 => DType::F32,
        1 => DType::F64,
        other => return Err(StoreError::corrupt(format!("unknown dtype tag {other}"))),
    };
    let ndims = cur.u8()? as usize;
    if !(1..=4).contains(&ndims) {
        return Err(StoreError::corrupt(format!("rank {ndims} outside 1..=4")));
    }
    if cur.u8()? != 0 {
        return Err(StoreError::corrupt("non-zero reserved byte"));
    }
    let header_len = cur.u32()?;
    if header_len as u64 > MAX_HEADER_LEN {
        return Err(StoreError::corrupt("header length above cap"));
    }
    let object_len = cur.u64()?;
    if object_len < SUPERBLOCK_LEN as u64 + header_len as u64 {
        return Err(StoreError::corrupt("object length shorter than header"));
    }
    Ok(SuperBlock {
        dtype,
        ndims,
        header_len,
        object_len,
    })
}

/// Parse and validate the header given its superblock.
///
/// `superblock_bytes` are the 20 raw bytes (needed for the header CRC);
/// `header_bytes` must be exactly `sb.header_len` long.
pub fn decode_header(
    sb: &SuperBlock,
    superblock_bytes: &[u8],
    header_bytes: &[u8],
) -> Result<ArrayMeta, StoreError> {
    if header_bytes.len() != sb.header_len as usize {
        return Err(StoreError::corrupt("header length mismatch"));
    }
    if header_bytes.len() < 4 {
        return Err(StoreError::corrupt("header too short for its CRC"));
    }
    let (body, crc_bytes) = header_bytes.split_at(header_bytes.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    let mut crc_input = Vec::with_capacity(SUPERBLOCK_LEN + body.len());
    crc_input.extend_from_slice(superblock_bytes);
    crc_input.extend_from_slice(body);
    if crc32(&crc_input) != stored_crc {
        return Err(StoreError::corrupt("header CRC mismatch"));
    }

    let mut cur = Cursor::new(body);
    let mut dims = Vec::with_capacity(sb.ndims);
    let mut elements: u64 = 1;
    for _ in 0..sb.ndims {
        let axis = cur.u64()?;
        if axis == 0 {
            return Err(StoreError::corrupt("zero-length axis"));
        }
        elements = elements
            .checked_mul(axis)
            .filter(|&n| n <= MAX_ELEMENTS)
            .ok_or_else(|| StoreError::corrupt("element count above cap"))?;
        dims.push(axis as usize);
    }
    let mut chunk_shape = Vec::with_capacity(sb.ndims);
    for axis in 0..sb.ndims {
        let chunk = cur.u64()?;
        if chunk == 0 || chunk > dims[axis] as u64 {
            return Err(StoreError::corrupt("chunk axis outside 1..=axis"));
        }
        chunk_shape.push(chunk as usize);
    }
    let timestep = cur.u64()?;
    let application = cur.str()?;
    let field = cur.str()?;
    let codec = cur.str()?;
    let n_options = cur.u16()? as usize;
    if n_options > MAX_OPTIONS {
        return Err(StoreError::corrupt("option count above cap"));
    }
    let mut options = Options::new();
    let mut last_key: Option<String> = None;
    for _ in 0..n_options {
        let key = cur.str()?;
        if let Some(prev) = &last_key {
            if *prev >= key {
                return Err(StoreError::corrupt("option keys not strictly ascending"));
            }
        }
        let value = match cur.u8()? {
            0 => OptionValue::F64(cur.f64()?),
            1 => OptionValue::U64(cur.u64()?),
            2 => match cur.u8()? {
                0 => OptionValue::Bool(false),
                1 => OptionValue::Bool(true),
                _ => return Err(StoreError::corrupt("non-canonical bool option")),
            },
            3 => OptionValue::Str(cur.str()?),
            other => return Err(StoreError::corrupt(format!("unknown option tag {other}"))),
        };
        options.set(&key, value);
        last_key = Some(key);
    }

    let grid = ChunkGrid::new(&dims, &chunk_shape)
        .map_err(|e| StoreError::corrupt(format!("invalid grid: {e}")))?;
    let n_chunks = cur.u64()?;
    if n_chunks != grid.n_chunks() as u64 {
        return Err(StoreError::corrupt(format!(
            "index claims {n_chunks} chunks, grid has {}",
            grid.n_chunks()
        )));
    }

    let data_start = SUPERBLOCK_LEN as u64 + sb.header_len as u64;
    let mut index = Vec::with_capacity(grid.n_chunks());
    let mut expected_offset = data_start;
    for _ in 0..grid.n_chunks() {
        let offset = cur.u64()?;
        let length = cur.u64()?;
        let bound = cur.f64()?;
        let crc = cur.u32()?;
        if offset != expected_offset {
            return Err(StoreError::corrupt("index offsets are not contiguous"));
        }
        if length == 0 {
            return Err(StoreError::corrupt("zero-length chunk payload"));
        }
        if !(bound.is_finite() && bound > 0.0) {
            return Err(StoreError::corrupt("chunk bound is not finite positive"));
        }
        expected_offset = offset
            .checked_add(length)
            .ok_or_else(|| StoreError::corrupt("index offset overflow"))?;
        index.push(ChunkEntry {
            offset,
            length,
            bound,
            crc32: crc,
        });
    }
    if cur.pos != body.len() {
        return Err(StoreError::corrupt("trailing bytes inside the header"));
    }
    if expected_offset != sb.object_len {
        return Err(StoreError::corrupt(
            "payloads do not end exactly at object_len",
        ));
    }

    Ok(ArrayMeta {
        dtype: sb.dtype,
        dims,
        chunk_shape,
        timestep,
        application,
        field,
        codec,
        options,
        index,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_meta() -> ArrayMeta {
        ArrayMeta {
            dtype: DType::F32,
            dims: vec![4, 6],
            chunk_shape: vec![2, 3],
            timestep: 7,
            application: "hurricane".into(),
            field: "CLOUDf".into(),
            codec: "szx".into(),
            options: Options::new().with("szx:block_size", 64u64),
            index: Vec::new(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip_preserves_everything() {
        let meta = sample_meta();
        let payloads: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8 + 1; 10 + i]).collect();
        let bounds = vec![0.5, 0.25, 0.125, 1.0];
        let object = encode(&meta, &bounds, &payloads).unwrap();

        let sb = decode_superblock(&object[..SUPERBLOCK_LEN]).unwrap();
        assert_eq!(sb.object_len, object.len() as u64);
        let header = &object[SUPERBLOCK_LEN..SUPERBLOCK_LEN + sb.header_len as usize];
        let decoded = decode_header(&sb, &object[..SUPERBLOCK_LEN], header).unwrap();
        assert_eq!(decoded.dims, meta.dims);
        assert_eq!(decoded.chunk_shape, meta.chunk_shape);
        assert_eq!(decoded.timestep, 7);
        assert_eq!(decoded.application, "hurricane");
        assert_eq!(decoded.field, "CLOUDf");
        assert_eq!(decoded.codec, "szx");
        assert_eq!(decoded.options, meta.options);
        assert_eq!(decoded.index.len(), 4);
        for (entry, (payload, &bound)) in decoded.index.iter().zip(payloads.iter().zip(&bounds)) {
            assert_eq!(entry.length, payload.len() as u64);
            assert_eq!(entry.bound, bound);
            assert_eq!(entry.crc32, crc32(payload));
            let got = &object[entry.offset as usize..(entry.offset + entry.length) as usize];
            assert_eq!(got, payload.as_slice());
        }
    }

    #[test]
    fn all_option_kinds_roundtrip() {
        let mut meta = sample_meta();
        meta.dims = vec![2];
        meta.chunk_shape = vec![2];
        meta.options = Options::new()
            .with("a:f", 0.125f64)
            .with("b:u", 9u64)
            .with("c:b", true)
            .with("d:s", "mode");
        let object = encode(&meta, &[1.0], &[vec![1, 2, 3]]).unwrap();
        let sb = decode_superblock(&object[..SUPERBLOCK_LEN]).unwrap();
        let decoded = decode_header(
            &sb,
            &object[..SUPERBLOCK_LEN],
            &object[SUPERBLOCK_LEN..SUPERBLOCK_LEN + sb.header_len as usize],
        )
        .unwrap();
        assert_eq!(decoded.options, meta.options);
    }

    #[test]
    fn header_crc_pins_every_header_byte() {
        let meta = sample_meta();
        let payloads: Vec<Vec<u8>> = (0..4).map(|i| vec![i as u8; 8]).collect();
        let object = encode(&meta, &[0.1; 4], &payloads).unwrap();
        let sb = decode_superblock(&object[..SUPERBLOCK_LEN]).unwrap();
        let header_end = SUPERBLOCK_LEN + sb.header_len as usize;
        // Flipping any single header-body bit must be caught (by the CRC or
        // by a structural check — either way, an error).
        for pos in SUPERBLOCK_LEN..header_end {
            let mut copy = object.clone();
            copy[pos] ^= 0x01;
            let header = &copy[SUPERBLOCK_LEN..header_end];
            assert!(
                decode_header(&sb, &copy[..SUPERBLOCK_LEN], header).is_err(),
                "flip at {pos} decoded"
            );
        }
    }
}
