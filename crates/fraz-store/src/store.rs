//! Storage abstraction: listable, readable, writable, byte-range capable.
//!
//! The reader never needs whole objects — it reads the superblock, the
//! header, and then exactly the byte ranges of the chunks a request
//! intersects.  That is what makes partial decode over large containers
//! cheap on any backend that can serve ranged reads (a local file, an HTTP
//! object store, a zip member...).

use std::collections::BTreeMap;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::StoreError;

/// A keyed byte store with ranged reads.
///
/// Keys are `/`-separated UTF-8 paths (`"CLOUDf/t0"`); implementations must
/// reject keys that would escape their root.  All methods take `&self` —
/// implementations are internally synchronized so writers and readers can
/// share a store across [`fraz_pool`] tasks.
pub trait Store: Send + Sync {
    /// Read a whole object.
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let size = self.size(key)?;
        self.get_range(key, 0, size)
    }

    /// Read exactly `len` bytes starting at `offset`.
    ///
    /// Reading past the end of the object is an error (`Io` or `Corrupt`),
    /// never a short read.
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError>;

    /// Create or replace an object.
    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError>;

    /// All keys in the store, sorted.
    fn list(&self) -> Result<Vec<String>, StoreError>;

    /// Size of an object in bytes.
    fn size(&self, key: &str) -> Result<u64, StoreError>;
}

/// Smart pointers to stores are stores: lets decorators like
/// `RetryStore<Box<dyn Store>>` stack over a backend chosen at runtime.
impl<T: Store + ?Sized> Store for Box<T> {
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        (**self).get(key)
    }
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        (**self).get_range(key, offset, len)
    }
    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        (**self).put(key, value)
    }
    fn list(&self) -> Result<Vec<String>, StoreError> {
        (**self).list()
    }
    fn size(&self, key: &str) -> Result<u64, StoreError> {
        (**self).size(key)
    }
}

impl<T: Store + ?Sized> Store for std::sync::Arc<T> {
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        (**self).get(key)
    }
    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        (**self).get_range(key, offset, len)
    }
    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        (**self).put(key, value)
    }
    fn list(&self) -> Result<Vec<String>, StoreError> {
        (**self).list()
    }
    fn size(&self, key: &str) -> Result<u64, StoreError> {
        (**self).size(key)
    }
}

fn range_of(data: &[u8], key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
    let end = offset
        .checked_add(len)
        .ok_or_else(|| StoreError::Io(format!("{key}: range {offset}+{len} overflows")))?;
    if end > data.len() as u64 {
        return Err(StoreError::Io(format!(
            "{key}: range {offset}..{end} exceeds object size {}",
            data.len()
        )));
    }
    Ok(data[offset as usize..end as usize].to_vec())
}

/// An in-memory store: a synchronized `BTreeMap<String, Vec<u8>>`.
#[derive(Debug, Default)]
pub struct MemoryStore {
    objects: Mutex<BTreeMap<String, Vec<u8>>>,
}

impl MemoryStore {
    /// An empty in-memory store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Store for MemoryStore {
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        self.objects
            .lock()
            .unwrap()
            .get(key)
            .cloned()
            .ok_or_else(|| StoreError::NotFound(key.into()))
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let objects = self.objects.lock().unwrap();
        let data = objects
            .get(key)
            .ok_or_else(|| StoreError::NotFound(key.into()))?;
        range_of(data, key, offset, len)
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.objects
            .lock()
            .unwrap()
            .insert(key.to_string(), value.to_vec());
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        Ok(self.objects.lock().unwrap().keys().cloned().collect())
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        let objects = self.objects.lock().unwrap();
        objects
            .get(key)
            .map(|d| d.len() as u64)
            .ok_or_else(|| StoreError::NotFound(key.into()))
    }
}

/// A filesystem store rooted at a directory; keys map to relative paths.
#[derive(Debug, Clone)]
pub struct FsStore {
    root: PathBuf,
}

impl FsStore {
    /// Open (creating if necessary) a store rooted at `root`.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| StoreError::Io(format!("create {}: {e}", root.display())))?;
        Ok(Self { root })
    }

    /// The root directory of the store.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn path_of(&self, key: &str) -> Result<PathBuf, StoreError> {
        if key.is_empty()
            || key.starts_with('/')
            || key.ends_with('/')
            || key.split('/').any(|part| {
                part.is_empty()
                    || part == "."
                    || part == ".."
                    || part.contains('\\')
                    || part.contains('\0')
            })
        {
            return Err(StoreError::Io(format!("invalid store key: {key:?}")));
        }
        Ok(self.root.join(key))
    }
}

impl Store for FsStore {
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let path = self.path_of(key)?;
        match std::fs::read(&path) {
            Ok(data) => Ok(data),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(key.into()))
            }
            Err(e) => Err(StoreError::from_io(&format!("read {key}"), &e)),
        }
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        let path = self.path_of(key)?;
        let mut file = match std::fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(StoreError::NotFound(key.into()))
            }
            Err(e) => return Err(StoreError::from_io(&format!("open {key}"), &e)),
        };
        let size = file
            .metadata()
            .map_err(|e| StoreError::from_io(&format!("stat {key}"), &e))?
            .len();
        let end = offset
            .checked_add(len)
            .ok_or_else(|| StoreError::Io(format!("{key}: range {offset}+{len} overflows")))?;
        if end > size {
            return Err(StoreError::Io(format!(
                "{key}: range {offset}..{end} exceeds object size {size}"
            )));
        }
        file.seek(SeekFrom::Start(offset))
            .map_err(|e| StoreError::from_io(&format!("seek {key}"), &e))?;
        let mut buf = vec![0u8; len as usize];
        file.read_exact(&mut buf)
            .map_err(|e| StoreError::from_io(&format!("read {key}"), &e))?;
        Ok(buf)
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        use std::io::Write;
        let path = self.path_of(key)?;
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)
                .map_err(|e| StoreError::from_io(&format!("mkdir for {key}"), &e))?;
        }
        // Write + fsync + rename: concurrent readers never observe a torn
        // object, and a crash after `put` returns cannot leave a renamed
        // name pointing at unsynced (possibly empty) data.
        let tmp = path.with_extension("tmp-fraz-store");
        let result = (|| {
            let mut file = std::fs::File::create(&tmp)
                .map_err(|e| StoreError::from_io(&format!("create {key}"), &e))?;
            file.write_all(value)
                .map_err(|e| StoreError::from_io(&format!("write {key}"), &e))?;
            file.sync_all()
                .map_err(|e| StoreError::from_io(&format!("fsync {key}"), &e))?;
            drop(file);
            std::fs::rename(&tmp, &path)
                .map_err(|e| StoreError::from_io(&format!("rename {key}"), &e))
        })();
        if result.is_err() {
            let _ = std::fs::remove_file(&tmp);
            return result;
        }
        // Best-effort directory fsync so the rename itself is durable; not
        // every filesystem supports opening a directory for sync, so
        // failure here is not an error.
        if let Some(parent) = path.parent() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
        Ok(())
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        fn walk(dir: &Path, prefix: &str, out: &mut Vec<String>) -> Result<(), StoreError> {
            let entries = std::fs::read_dir(dir)
                .map_err(|e| StoreError::Io(format!("list {}: {e}", dir.display())))?;
            for entry in entries {
                let entry =
                    entry.map_err(|e| StoreError::Io(format!("list {}: {e}", dir.display())))?;
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                let key = if prefix.is_empty() {
                    name.to_string()
                } else {
                    format!("{prefix}/{name}")
                };
                let path = entry.path();
                if path.is_dir() {
                    walk(&path, &key, out)?;
                } else {
                    out.push(key);
                }
            }
            Ok(())
        }
        let mut keys = Vec::new();
        walk(&self.root, "", &mut keys)?;
        keys.sort();
        Ok(keys)
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        let path = self.path_of(key)?;
        match std::fs::metadata(&path) {
            Ok(meta) => Ok(meta.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(StoreError::NotFound(key.into()))
            }
            Err(e) => Err(StoreError::from_io(&format!("stat {key}"), &e)),
        }
    }
}

/// One recorded read: `(key, offset, len)`.
pub type RangeRead = (String, u64, u64);

/// A `Store` wrapper that records every ranged read it serves.
///
/// Used by the partial-decode tests to prove `read_region` touches *exactly*
/// the intersecting chunks' byte ranges and nothing else.
pub struct CountingStore<S: Store> {
    inner: S,
    reads: Mutex<Vec<RangeRead>>,
}

impl<S: Store> CountingStore<S> {
    /// Wrap a store, starting with an empty read log.
    pub fn new(inner: S) -> Self {
        Self {
            inner,
            reads: Mutex::new(Vec::new()),
        }
    }

    /// Every ranged read served since the last [`clear`](Self::clear), in
    /// call order (whole-object `get`s are recorded as full-range reads).
    pub fn reads(&self) -> Vec<RangeRead> {
        self.reads.lock().unwrap().clone()
    }

    /// Forget the recorded reads.
    pub fn clear(&self) {
        self.reads.lock().unwrap().clear();
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }
}

impl<S: Store> Store for CountingStore<S> {
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        let data = self.inner.get(key)?;
        self.reads
            .lock()
            .unwrap()
            .push((key.to_string(), 0, data.len() as u64));
        Ok(data)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.reads
            .lock()
            .unwrap()
            .push((key.to_string(), offset, len));
        self.inner.get_range(key, offset, len)
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        self.inner.put(key, value)
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.inner.list()
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        self.inner.size(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_store_roundtrip_and_ranges() {
        let store = MemoryStore::new();
        store.put("a/b", &[1, 2, 3, 4, 5]).unwrap();
        assert_eq!(store.get("a/b").unwrap(), vec![1, 2, 3, 4, 5]);
        assert_eq!(store.size("a/b").unwrap(), 5);
        assert_eq!(store.get_range("a/b", 1, 3).unwrap(), vec![2, 3, 4]);
        assert_eq!(store.get_range("a/b", 5, 0).unwrap(), Vec::<u8>::new());
        assert!(store.get_range("a/b", 4, 2).is_err());
        assert!(store.get_range("a/b", u64::MAX, 2).is_err());
        assert!(matches!(store.get("missing"), Err(StoreError::NotFound(_))));
        store.put("a/a", &[9]).unwrap();
        assert_eq!(store.list().unwrap(), vec!["a/a", "a/b"]);
    }

    fn temp_root(tag: &str) -> PathBuf {
        let mut root = std::env::temp_dir();
        root.push(format!("fraz-store-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        root
    }

    #[test]
    fn fs_store_roundtrip_ranges_and_listing() {
        let root = temp_root("roundtrip");
        let store = FsStore::open(&root).unwrap();
        store.put("field/t0", b"hello world").unwrap();
        store.put("field/t1", b"x").unwrap();
        store.put("other", b"yy").unwrap();
        assert_eq!(store.get("field/t0").unwrap(), b"hello world");
        assert_eq!(store.get_range("field/t0", 6, 5).unwrap(), b"world");
        assert!(store.get_range("field/t0", 6, 6).is_err());
        assert_eq!(store.size("field/t1").unwrap(), 1);
        assert_eq!(store.list().unwrap(), vec!["field/t0", "field/t1", "other"]);
        // Overwrite is atomic-by-rename and replaces contents.
        store.put("field/t0", b"bye").unwrap();
        assert_eq!(store.get("field/t0").unwrap(), b"bye");
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fs_store_rejects_escaping_keys() {
        let root = temp_root("escape");
        let store = FsStore::open(&root).unwrap();
        for key in [
            "", "/abs", "a//b", "../up", "a/../b", "a/./b", "tail/", "a\\b",
        ] {
            assert!(store.put(key, b"x").is_err(), "key {key:?} accepted");
        }
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn counting_store_records_ranged_reads() {
        let store = CountingStore::new(MemoryStore::new());
        store.put("k", &[0u8; 64]).unwrap();
        store.get_range("k", 8, 16).unwrap();
        store.get_range("k", 32, 4).unwrap();
        assert_eq!(
            store.reads(),
            vec![("k".to_string(), 8, 16), ("k".to_string(), 32, 4)]
        );
        store.clear();
        assert!(store.reads().is_empty());
    }
}
