//! Row-run copies between an n-dimensional array and a sub-box of it.
//!
//! Both helpers move whole rows along the fastest-varying (last) axis, so
//! the inner loop is a contiguous `copy_from_slice` and the odometer only
//! walks the outer axes.  They are the glue between chunk payloads and
//! region buffers: `extract` cuts a chunk (or a chunk's intersection with a
//! request) out of a larger array, `scatter` pastes it into the output.

use fraz_data::DataBuffer;

fn strides(dims: &[usize]) -> Vec<usize> {
    let mut strides = vec![1usize; dims.len()];
    for axis in (0..dims.len().saturating_sub(1)).rev() {
        strides[axis] = strides[axis + 1] * dims[axis + 1];
    }
    strides
}

/// Copy the box `origin..origin+shape` out of an array of shape `dims`.
pub fn extract<T: Copy + Default>(
    src: &[T],
    dims: &[usize],
    origin: &[usize],
    shape: &[usize],
) -> Vec<T> {
    debug_assert_eq!(dims.len(), origin.len());
    debug_assert_eq!(dims.len(), shape.len());
    debug_assert!(origin
        .iter()
        .zip(shape.iter().zip(dims))
        .all(|(&o, (&s, &d))| o + s <= d));
    let mut out = vec![T::default(); shape.iter().product()];
    let src_strides = strides(dims);
    let row = *shape.last().expect("non-empty shape");
    let outer: usize = shape[..shape.len() - 1].iter().product();
    let mut coords = vec![0usize; shape.len() - 1];
    let mut dst_pos = 0usize;
    for _ in 0..outer {
        let mut src_pos = 0usize;
        for (axis, &c) in coords.iter().enumerate() {
            src_pos += (origin[axis] + c) * src_strides[axis];
        }
        src_pos += origin[shape.len() - 1];
        out[dst_pos..dst_pos + row].copy_from_slice(&src[src_pos..src_pos + row]);
        dst_pos += row;
        for axis in (0..coords.len()).rev() {
            coords[axis] += 1;
            if coords[axis] < shape[axis] {
                break;
            }
            coords[axis] = 0;
        }
    }
    out
}

/// Paste an array of shape `shape` into the box at `origin` of an array of
/// shape `dst_dims`.
pub fn scatter<T: Copy>(
    dst: &mut [T],
    dst_dims: &[usize],
    origin: &[usize],
    src: &[T],
    shape: &[usize],
) {
    debug_assert_eq!(dst_dims.len(), origin.len());
    debug_assert_eq!(dst_dims.len(), shape.len());
    debug_assert_eq!(src.len(), shape.iter().product::<usize>());
    debug_assert!(origin
        .iter()
        .zip(shape.iter().zip(dst_dims))
        .all(|(&o, (&s, &d))| o + s <= d));
    let dst_strides = strides(dst_dims);
    let row = *shape.last().expect("non-empty shape");
    let outer: usize = shape[..shape.len() - 1].iter().product();
    let mut coords = vec![0usize; shape.len() - 1];
    let mut src_pos = 0usize;
    for _ in 0..outer {
        let mut dst_pos = 0usize;
        for (axis, &c) in coords.iter().enumerate() {
            dst_pos += (origin[axis] + c) * dst_strides[axis];
        }
        dst_pos += origin[shape.len() - 1];
        dst[dst_pos..dst_pos + row].copy_from_slice(&src[src_pos..src_pos + row]);
        src_pos += row;
        for axis in (0..coords.len()).rev() {
            coords[axis] += 1;
            if coords[axis] < shape[axis] {
                break;
            }
            coords[axis] = 0;
        }
    }
}

/// `extract` lifted over [`DataBuffer`], preserving the element type.
pub fn extract_buffer(
    src: &DataBuffer,
    dims: &[usize],
    origin: &[usize],
    shape: &[usize],
) -> DataBuffer {
    match src {
        DataBuffer::F32(values) => DataBuffer::F32(extract(values, dims, origin, shape)),
        DataBuffer::F64(values) => DataBuffer::F64(extract(values, dims, origin, shape)),
    }
}

/// `scatter` lifted over [`DataBuffer`]; panics if the element types differ
/// (the reader validates chunk dtypes before calling this).
pub fn scatter_buffer(
    dst: &mut DataBuffer,
    dst_dims: &[usize],
    origin: &[usize],
    src: &DataBuffer,
    shape: &[usize],
) {
    match (dst, src) {
        (DataBuffer::F32(dst), DataBuffer::F32(src)) => scatter(dst, dst_dims, origin, src, shape),
        (DataBuffer::F64(dst), DataBuffer::F64(src)) => scatter(dst, dst_dims, origin, src, shape),
        _ => panic!("dtype mismatch between scatter source and destination"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_1d_is_a_plain_slice() {
        let src: Vec<i32> = (0..10).collect();
        assert_eq!(extract(&src, &[10], &[3], &[4]), vec![3, 4, 5, 6]);
    }

    #[test]
    fn extract_2d_cuts_the_expected_box() {
        // 3 x 4, row-major.
        let src: Vec<i32> = (0..12).collect();
        assert_eq!(extract(&src, &[3, 4], &[1, 1], &[2, 2]), vec![5, 6, 9, 10]);
    }

    #[test]
    fn extract_3d_cuts_the_expected_box() {
        let src: Vec<i32> = (0..24).collect(); // 2 x 3 x 4
        assert_eq!(
            extract(&src, &[2, 3, 4], &[0, 1, 2], &[2, 1, 2]),
            vec![6, 7, 18, 19]
        );
    }

    #[test]
    fn scatter_is_the_inverse_of_extract() {
        let dims = [3usize, 4, 5];
        let src: Vec<i32> = (0..60).collect();
        let origin = [1usize, 2, 1];
        let shape = [2usize, 2, 3];
        let cut = extract(&src, &dims, &origin, &shape);
        let mut dst = vec![0i32; 60];
        scatter(&mut dst, &dims, &origin, &cut, &shape);
        for (i, (&got, &want)) in dst.iter().zip(&src).enumerate() {
            let coords = [i / 20, (i / 5) % 4, i % 5];
            let inside = coords
                .iter()
                .zip(origin.iter().zip(&shape))
                .all(|(&c, (&o, &s))| c >= o && c < o + s);
            if inside {
                assert_eq!(got, want, "inside at {coords:?}");
            } else {
                assert_eq!(got, 0, "outside at {coords:?}");
            }
        }
    }

    #[test]
    fn whole_array_extract_is_identity() {
        let src: Vec<i32> = (0..24).collect();
        assert_eq!(extract(&src, &[4, 6], &[0, 0], &[4, 6]), src);
    }
}
