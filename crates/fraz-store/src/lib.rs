//! Chunked array store with per-chunk tuned error bounds and partial decode.
//!
//! FRaZ's offline search tunes **one** error bound per field and compresses
//! the field as a monolith.  That caps fidelity on non-stationary data (the
//! loud eye of Hurricane `CLOUDf` and its near-zero far field share a single
//! absolute bound) and forces a reader to decode everything to inspect
//! anything.  This crate provides the zarrs-style alternative:
//!
//! * [`ChunkGrid`] — a regular chunk grid over an n-dimensional field
//!   (configurable chunk shape, clamped edge chunks),
//! * [`Store`] — a storage abstraction (listable, readable, writable, with
//!   byte-range reads) with [`MemoryStore`] and [`FsStore`] backends and a
//!   [`CountingStore`] instrumentation wrapper,
//! * a self-describing container format (dims, dtype, chunk shape, codec
//!   name + options in the header; a per-chunk offset/length/bound/CRC32
//!   index; a header CRC) — see [`mod@format`],
//! * [`write_array`] — compresses chunks independently on [`fraz_pool`],
//!   running a [`fraz_core::FixedRatioSearch`] (or
//!   [`fraz_core::FixedQualitySearch`] for PSNR targets) *per chunk* so each
//!   chunk gets its own tuned bound, warm-starting each search from the last
//!   converged bound,
//! * [`ArrayReader`] — opens a container and serves
//!   [`read_region`](ArrayReader::read_region) requests by fetching and
//!   decoding **only** the chunks that intersect the request, via byte-range
//!   reads against the `Store`.
//!
//! Codecs are built through the `fraz-pressio` registry by name, so any
//! current or future backend (feature-gate aware) works unchanged.
//!
//! ```
//! use fraz_store::{write_array, ArrayReader, ChunkTarget, MemoryStore, StoreWriteConfig};
//! # fn main() -> Result<(), fraz_store::StoreError> {
//! let dataset = fraz_data::synthetic::hurricane(8, 16, 16, 1, 42).field("TCf", 0);
//! let store = MemoryStore::new();
//! let config = StoreWriteConfig::new(vec![4, 8, 8], "szx", ChunkTarget::FixedBound(0.05));
//! let report = write_array(&store, "TCf/t0", &dataset, &config)?;
//! assert_eq!(report.chunks.len(), 8);
//!
//! let reader = ArrayReader::open(&store, "TCf/t0")?;
//! // Decodes exactly the two chunks intersecting this slab — nothing else.
//! let slab = reader.read_region(&[2..6, 0..16, 0..8])?;
//! assert_eq!(slab.dims.as_slice(), &[4, 16, 8]);
//! # Ok(())
//! # }
//! ```

pub mod faulty;
pub mod format;
pub mod grid;
pub mod reader;
pub mod region;
pub mod retry;
pub mod store;
pub mod writer;

use std::fmt;

pub use faulty::{FaultConfig, FaultStats, FaultyStore};
pub use format::{ArrayMeta, ChunkEntry};
pub use grid::ChunkGrid;
pub use reader::ArrayReader;
pub use retry::{RetryPolicy, RetryStore};
pub use store::{CountingStore, FsStore, MemoryStore, Store};
pub use writer::{
    write_array, write_array_on, write_array_seeded, ChunkReport, ChunkTarget, StoreWriteConfig,
    WriteReport,
};

/// Everything that can go wrong in the store layer.
///
/// The decode paths treat *any* malformed container as
/// [`Corrupt`](StoreError::Corrupt) — truncation, bit flips, inconsistent counts and
/// garbage must all surface as an `Err`, never a panic or an out-of-bounds
/// read (the same posture as `fraz-szx`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Underlying storage I/O failed in a way that is worth retrying
    /// (interrupted syscall, timeout, resource temporarily busy).  The
    /// [`RetryStore`] decorator keys its backoff off this variant.
    Transient(String),
    /// Underlying storage I/O failed permanently (retrying is pointless).
    Io(String),
    /// The requested key does not exist in the store.
    NotFound(String),
    /// The container bytes are malformed, truncated or inconsistent.
    Corrupt(String),
    /// Building or running the codec failed.
    Codec(String),
    /// The request is structurally valid but not supported (codec cannot
    /// handle the chunk dimensionality, dtype mismatch, ...).
    Unsupported(String),
    /// The requested region is empty, out of bounds, or has the wrong rank.
    InvalidRegion(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Transient(msg) => write!(f, "transient storage error: {msg}"),
            StoreError::Io(msg) => write!(f, "storage I/O error: {msg}"),
            StoreError::NotFound(key) => write!(f, "key not found: {key}"),
            StoreError::Corrupt(msg) => write!(f, "corrupt container: {msg}"),
            StoreError::Codec(msg) => write!(f, "codec error: {msg}"),
            StoreError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            StoreError::InvalidRegion(msg) => write!(f, "invalid region: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl StoreError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        StoreError::Corrupt(msg.into())
    }

    /// True when retrying the operation may succeed (the retry layer's
    /// classification key).
    pub fn is_transient(&self) -> bool {
        matches!(self, StoreError::Transient(_))
    }

    /// Classify an [`std::io::Error`] under `context` into
    /// [`Transient`](StoreError::Transient) or [`Io`](StoreError::Io) by
    /// its kind: interruptions, timeouts and would-blocks are worth a
    /// retry; everything else (permissions, missing directories, full
    /// disks) is permanent.
    pub fn from_io(context: &str, error: &std::io::Error) -> Self {
        use std::io::ErrorKind;
        let msg = format!("{context}: {error}");
        match error.kind() {
            ErrorKind::Interrupted | ErrorKind::TimedOut | ErrorKind::WouldBlock => {
                StoreError::Transient(msg)
            }
            _ => StoreError::Io(msg),
        }
    }
}
