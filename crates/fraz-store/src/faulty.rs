//! Fault injection for the store layer — chaos as a first-class subsystem.
//!
//! [`FaultyStore`] wraps any [`Store`] and injects failures drawn from a
//! seeded [`ChaCha8Rng`], so a chaos run is *reproducible*: the same seed
//! produces the same schedule of errors, latencies and torn writes.  The
//! injectable faults mirror what real storage does under duress:
//!
//! * **transient errors** — the op fails with [`StoreError::Transient`]
//!   (the retry layer's food),
//! * **permanent errors** — the op fails with [`StoreError::Io`],
//! * **latency** — the op sleeps a uniform random delay before running,
//! * **torn writes** — a `put` writes only a prefix of the object to the
//!   inner store and then reports failure, exactly the state a crash
//!   between write and rename would leave on a non-atomic backend.
//!
//! The chaos suites assert that *no* combination of these ever panics a
//! consumer, hangs it, or lets a torn object decode as valid data.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use crate::{Store, StoreError};

/// What to inject, and how often.  All probabilities are per-operation and
/// independent.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability an operation fails with [`StoreError::Transient`].
    pub transient_rate: f64,
    /// Probability an operation fails with [`StoreError::Io`] (permanent).
    pub permanent_rate: f64,
    /// Probability a `put` tears: a random proper prefix reaches the inner
    /// store and the call reports a transient failure.
    pub torn_write_rate: f64,
    /// When set, every operation first sleeps a uniform delay in this
    /// range.
    pub latency: Option<(Duration, Duration)>,
    /// Seed of the fault schedule.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            transient_rate: 0.0,
            permanent_rate: 0.0,
            torn_write_rate: 0.0,
            latency: None,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A schedule injecting transient errors at `rate` with `seed`.
    pub fn transient(rate: f64, seed: u64) -> Self {
        Self {
            transient_rate: rate,
            seed,
            ..Self::default()
        }
    }
}

/// Counters of what was actually injected (for asserting a chaos run
/// really exercised the error paths).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Operations failed with a transient error.
    pub transient_errors: u64,
    /// Operations failed with a permanent error.
    pub permanent_errors: u64,
    /// `put`s that tore.
    pub torn_writes: u64,
    /// Operations delayed by injected latency.
    pub delays: u64,
    /// Operations that ran clean.
    pub passed: u64,
}

#[derive(Default)]
struct Counters {
    transient_errors: AtomicU64,
    permanent_errors: AtomicU64,
    torn_writes: AtomicU64,
    delays: AtomicU64,
    passed: AtomicU64,
}

/// A [`Store`] decorator that injects seed-deterministic faults.
pub struct FaultyStore<S> {
    inner: S,
    config: FaultConfig,
    rng: Mutex<ChaCha8Rng>,
    counters: Counters,
}

enum Verdict {
    Pass,
    Transient,
    Permanent,
    /// Fraction of the value to let through before failing the `put`.
    Torn(f64),
}

impl<S: Store> FaultyStore<S> {
    /// Wrap `inner` with the given fault schedule.
    pub fn new(inner: S, config: FaultConfig) -> Self {
        let rng = Mutex::new(ChaCha8Rng::seed_from_u64(config.seed));
        Self {
            inner,
            config,
            rng,
            counters: Counters::default(),
        }
    }

    /// The wrapped store.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// What was injected so far.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            transient_errors: self.counters.transient_errors.load(Ordering::Relaxed),
            permanent_errors: self.counters.permanent_errors.load(Ordering::Relaxed),
            torn_writes: self.counters.torn_writes.load(Ordering::Relaxed),
            delays: self.counters.delays.load(Ordering::Relaxed),
            passed: self.counters.passed.load(Ordering::Relaxed),
        }
    }

    /// Draw this operation's fate (and latency) from the schedule.  The
    /// sleep happens outside the rng lock so concurrent callers do not
    /// serialize on injected latency.
    fn roll(&self, is_put: bool) -> Verdict {
        let (delay, verdict) = {
            let mut rng = self.rng.lock().unwrap_or_else(|p| p.into_inner());
            let delay = self.config.latency.map(|(lo, hi)| {
                if hi > lo {
                    let span = (hi - lo).as_secs_f64();
                    lo + Duration::from_secs_f64(rng.gen_range(0.0..span))
                } else {
                    lo
                }
            });
            let verdict = if is_put
                && self.config.torn_write_rate > 0.0
                && rng.gen_bool(self.config.torn_write_rate)
            {
                Verdict::Torn(rng.gen_range(0.0..1.0))
            } else if self.config.transient_rate > 0.0 && rng.gen_bool(self.config.transient_rate) {
                Verdict::Transient
            } else if self.config.permanent_rate > 0.0 && rng.gen_bool(self.config.permanent_rate) {
                Verdict::Permanent
            } else {
                Verdict::Pass
            };
            (delay, verdict)
        };
        if let Some(delay) = delay {
            self.counters.delays.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(delay);
        }
        verdict
    }

    fn gate(&self, op: &str) -> Result<(), StoreError> {
        match self.roll(false) {
            Verdict::Pass => {
                self.counters.passed.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Verdict::Transient => {
                self.counters
                    .transient_errors
                    .fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Transient(format!("injected fault: {op}")))
            }
            Verdict::Permanent | Verdict::Torn(_) => {
                self.counters
                    .permanent_errors
                    .fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Io(format!("injected fault: {op}")))
            }
        }
    }
}

impl<S: Store> Store for FaultyStore<S> {
    fn get(&self, key: &str) -> Result<Vec<u8>, StoreError> {
        self.gate("get")?;
        self.inner.get(key)
    }

    fn get_range(&self, key: &str, offset: u64, len: u64) -> Result<Vec<u8>, StoreError> {
        self.gate("get_range")?;
        self.inner.get_range(key, offset, len)
    }

    fn put(&self, key: &str, value: &[u8]) -> Result<(), StoreError> {
        match self.roll(true) {
            Verdict::Pass => {
                self.counters.passed.fetch_add(1, Ordering::Relaxed);
                self.inner.put(key, value)
            }
            Verdict::Transient => {
                self.counters
                    .transient_errors
                    .fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Transient("injected fault: put".into()))
            }
            Verdict::Permanent => {
                self.counters
                    .permanent_errors
                    .fetch_add(1, Ordering::Relaxed);
                Err(StoreError::Io("injected fault: put".into()))
            }
            Verdict::Torn(fraction) => {
                self.counters.torn_writes.fetch_add(1, Ordering::Relaxed);
                // A proper prefix — never the whole object — reaches the
                // backend, then the call fails as a transient error so
                // retry layers will overwrite the damage.
                let cut =
                    ((value.len() as f64 * fraction) as usize).min(value.len().saturating_sub(1));
                let _ = self.inner.put(key, &value[..cut]);
                Err(StoreError::Transient("injected fault: torn put".into()))
            }
        }
    }

    fn list(&self) -> Result<Vec<String>, StoreError> {
        self.gate("list")?;
        self.inner.list()
    }

    fn size(&self, key: &str) -> Result<u64, StoreError> {
        self.gate("size")?;
        self.inner.size(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::{RetryPolicy, RetryStore};
    use crate::MemoryStore;

    #[test]
    fn zero_rates_are_a_transparent_wrapper() {
        let store = FaultyStore::new(MemoryStore::new(), FaultConfig::default());
        store.put("k", b"value").unwrap();
        assert_eq!(store.get("k").unwrap(), b"value");
        let stats = store.stats();
        assert_eq!(stats.transient_errors + stats.permanent_errors, 0);
        assert!(stats.passed >= 2);
    }

    #[test]
    fn fault_schedule_is_seed_deterministic() {
        let run = |seed: u64| {
            let store = FaultyStore::new(MemoryStore::new(), FaultConfig::transient(0.3, seed));
            (0..50)
                .map(|i| store.put(&format!("k{i}"), b"x").is_err())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42), "same seed, same schedule");
        assert_ne!(run(42), run(43), "different seed, different schedule");
    }

    #[test]
    fn injected_transients_are_healed_by_the_retry_layer() {
        let faulty = FaultyStore::new(MemoryStore::new(), FaultConfig::transient(0.4, 9));
        let store = RetryStore::with_policy(
            faulty,
            RetryPolicy {
                max_attempts: 16,
                base_delay: Duration::from_micros(10),
                max_delay: Duration::from_micros(100),
                seed: 1,
            },
        );
        for i in 0..30 {
            let key = format!("k{i}");
            store.put(&key, b"payload").unwrap();
            assert_eq!(store.get(&key).unwrap(), b"payload");
        }
        let stats = store.inner().stats();
        assert!(stats.transient_errors > 0, "chaos must actually inject");
        assert!(store.retries() >= stats.transient_errors);
    }

    #[test]
    fn torn_puts_leave_a_proper_prefix_and_report_transient() {
        let config = FaultConfig {
            torn_write_rate: 1.0,
            seed: 5,
            ..FaultConfig::default()
        };
        let store = FaultyStore::new(MemoryStore::new(), config);
        let value = vec![7u8; 1024];
        let err = store.put("k", &value).unwrap_err();
        assert!(err.is_transient());
        let torn = store.inner().get("k").unwrap();
        assert!(torn.len() < value.len(), "the whole object must not land");
        assert_eq!(store.stats().torn_writes, 1);
    }

    #[test]
    fn latency_injection_delays_but_does_not_fail() {
        let config = FaultConfig {
            latency: Some((Duration::from_millis(1), Duration::from_millis(3))),
            seed: 3,
            ..FaultConfig::default()
        };
        let store = FaultyStore::new(MemoryStore::new(), config);
        let start = std::time::Instant::now();
        store.put("k", b"v").unwrap();
        store.get("k").unwrap();
        assert!(start.elapsed() >= Duration::from_millis(2));
        assert_eq!(store.stats().delays, 2);
    }
}
