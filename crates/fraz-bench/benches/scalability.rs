//! Criterion benchmark behind Figure 8: orchestrator runtime as the worker
//! count grows (strong scaling on a fixed multi-field workload).
//!
//! Two modes per worker count:
//!
//! * `orchestrator_strong_scaling` — the shared work-stealing pool: the
//!   orchestrator (and therefore its pool) is built **once**, outside the
//!   timing loop, so each iteration measures pure task-graph execution.
//! * `orchestrator_spawn_per_batch` — the pre-pool regime: the
//!   orchestrator is rebuilt inside the timing loop, so every iteration
//!   pays worker-thread spawn/teardown, like the old per-batch
//!   `std::thread::scope` implementation did on every call.
//!
//! The gap between the two groups at the same worker count is the
//! harness overhead the shared pool removes; `baselines/scalability.jsonl`
//! commits one snapshot of both.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_core::{Orchestrator, OrchestratorConfig, SearchConfig};
use fraz_data::Dataset;

const WORKER_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];

/// `FRAZ_BENCH_SMOKE=1` drops to one timed sample per point: CI uses it
/// to catch bench bitrot and pool hangs in seconds instead of running
/// the full statistical sweep.
fn sample_size() -> usize {
    if std::env::var_os("FRAZ_BENCH_SMOKE").is_some() {
        1
    } else {
        10
    }
}

fn bench_fields() -> Vec<(String, Vec<Dataset>)> {
    let app = workloads::hurricane(Scale::Quick);
    // Keep the workload small: 4 fields x 1 time-step.
    app.field_names()
        .into_iter()
        .take(4)
        .map(|f| (f.clone(), vec![app.field(&f, 0)]))
        .collect()
}

fn bench_config(workers: usize) -> OrchestratorConfig {
    let search = SearchConfig {
        measure_final_quality: false,
        max_iterations: 10,
        ..SearchConfig::new(10.0, 0.1).with_regions(4)
    };
    OrchestratorConfig {
        total_workers: workers,
        ..OrchestratorConfig::new(search)
    }
}

fn pool_strong_scaling(c: &mut Criterion) {
    let fields = bench_fields();
    let mut group = c.benchmark_group("orchestrator_strong_scaling");
    group.sample_size(sample_size());
    for workers in WORKER_COUNTS {
        // Build the pool once; iterations spawn zero OS threads.
        let orch = Orchestrator::new("sz", bench_config(workers)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, _| {
            b.iter(|| orch.run_application(&fields));
        });
    }
    group.finish();
}

fn spawn_per_batch(c: &mut Criterion) {
    let fields = bench_fields();
    let mut group = c.benchmark_group("orchestrator_spawn_per_batch");
    group.sample_size(sample_size());
    for workers in WORKER_COUNTS {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                // Rebuilding the orchestrator re-spawns (and on drop joins)
                // its `w` pool workers — the old per-batch thread cost.
                let orch = Orchestrator::new("sz", bench_config(w)).unwrap();
                orch.run_application(&fields)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, pool_strong_scaling, spawn_per_batch);
criterion_main!(benches);
