//! Criterion benchmark behind Figure 8: orchestrator runtime as the worker
//! count grows (strong scaling on a fixed multi-field workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_core::{Orchestrator, OrchestratorConfig, SearchConfig};
use fraz_data::Dataset;

fn scalability_benchmarks(c: &mut Criterion) {
    let app = workloads::hurricane(Scale::Quick);
    // Keep the workload small: 4 fields x 1 time-step.
    let fields: Vec<(String, Vec<Dataset>)> = app
        .field_names()
        .into_iter()
        .take(4)
        .map(|f| (f.clone(), vec![app.field(&f, 0)]))
        .collect();

    let mut group = c.benchmark_group("orchestrator_strong_scaling");
    group.sample_size(10);
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| {
                let search = SearchConfig {
                    measure_final_quality: false,
                    max_iterations: 10,
                    ..SearchConfig::new(10.0, 0.1).with_regions(4)
                };
                let orch = Orchestrator::new(
                    "sz",
                    OrchestratorConfig {
                        total_workers: w,
                        ..OrchestratorConfig::new(search)
                    },
                )
                .unwrap();
                orch.run_application(&fields)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, scalability_benchmarks);
criterion_main!(benches);
