//! The synthetic-scenario baseline table: per (regime × codec) compression
//! ratios over the canonical ordering workloads, recorded as deterministic
//! `{"group":"scenarios",...,"ratio":R}` rows next to the criterion
//! timings — the committed `baselines/scenarios.jsonl` pins the regimes'
//! known compressibility ordering (smooth ≻ turbulence ≻ noise) the same
//! way `tests/scenario_matrix.rs` asserts it, but as floor-checked numbers
//! CI can diff across commits.
//!
//! The criterion group times scenario *generation* itself (the zero-file
//! manifest path synthesizes fields on every run, so generation throughput
//! is a user-visible cost).

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_pressio::registry;
use fraz_scenarios::{by_name, REGIMES};

/// The bound the ordering baselines are recorded at — the same value the
/// oracle matrix (`tests/scenario_matrix.rs`) asserts ordering at.
const ORDERING_BOUND: f64 = 2e-2;

/// The two codecs the committed baseline table tracks: the paper's primary
/// codec and the throughput-oriented backend, both always registered in the
/// default build.
const BASELINE_CODECS: [&str; 2] = ["sz", "szx"];

/// One timed sample per point under `FRAZ_BENCH_SMOKE=1` (CI bitrot +
/// regression guard), ten otherwise.
fn sample_size() -> usize {
    if std::env::var_os("FRAZ_BENCH_SMOKE").is_some() {
        1
    } else {
        10
    }
}

fn generation_benchmarks(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario_gen");
    group.sample_size(sample_size());
    let side = Scale::from_env().pick(64, 512);
    let dims = fraz_data::Dims::d2(side, side);
    let bytes = (dims.len() * 4) as u64;
    for regime in REGIMES {
        let config = by_name(regime.name()).unwrap();
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(
            BenchmarkId::from_parameter(regime.name()),
            &config,
            |b, config| {
                b.iter(|| config.generate(&dims, fraz_data::DType::F32, 0));
            },
        );
    }
    group.finish();
}

/// Append one deterministic ratio row next to the criterion records (same
/// file, same `--check` tooling — compression ratios of fixed inputs are
/// machine-noise-free, so the committed floors are sharp).
fn record_ratio(id: &str, ratio: f64) {
    println!("scenarios/{id}: ratio {ratio:.3} at bound {ORDERING_BOUND:e}");
    let Ok(dir) = std::env::var("FRAZ_BENCH_RECORD_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("scenarios.jsonl");
    let line = format!(
        "{{\"group\":\"scenarios\",\"id\":{id:?},\"ratio\":{ratio:.3},\"bound\":{ORDERING_BOUND:e}}}"
    );
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("warning: cannot write to {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot open {}: {e}", path.display()),
    }
}

/// The baseline table proper: for each codec, each regime's geometric-mean
/// ratio across the canonical workloads (quick scale — the committed
/// baselines must match what CI records).
fn ratio_table() {
    let fields = workloads::scenario_fields(Scale::Quick);
    for codec_name in BASELINE_CODECS {
        let codec = registry::build_default(codec_name).expect("default codec");
        for regime in REGIMES {
            let mut log_sum = 0.0;
            let mut count = 0usize;
            for field in fields.iter().filter(|f| f.descriptor.regime == regime) {
                if !codec.supports_dims(&field.dataset.dims) {
                    continue;
                }
                let out = codec
                    .evaluate(&field.dataset, ORDERING_BOUND, false)
                    .unwrap_or_else(|e| panic!("{codec_name} on {regime}: {e}"));
                log_sum += out.compression_ratio.ln();
                count += 1;
            }
            assert!(
                count > 0,
                "{codec_name}: no supported workload for {regime}"
            );
            record_ratio(
                &format!("{}_{codec_name}", regime.name()),
                (log_sum / count as f64).exp(),
            );
        }
    }
}

criterion_group!(benches, generation_benchmarks);

fn main() {
    benches();
    ratio_table();
}
