//! Criterion benchmarks for the chunked array store: end-to-end write
//! throughput at a fixed bound, full-array read, and partial (slab) read —
//! the three paths a consumer actually pays for.  A separate non-timed
//! section records the warm-start effect on per-chunk `Ratio` tuning: the
//! same write with and without bound propagation between neighbouring
//! chunks, reported as total search evaluations (fewer is better; the
//! timed rows would smear this into wall-clock noise).
//!
//! `FRAZ_BENCH_SMOKE=1` drops to one timed sample per benchmark; CI
//! combines it with `FRAZ_BENCH_RECORD_DIR` to guard the committed
//! `baselines/store.jsonl` rows against large regressions.

use std::io::Write as _;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_store::{write_array, ArrayReader, ChunkTarget, MemoryStore, StoreWriteConfig};

/// One timed sample per point under `FRAZ_BENCH_SMOKE=1` (CI bitrot +
/// regression guard), ten otherwise.
fn sample_size() -> usize {
    if std::env::var_os("FRAZ_BENCH_SMOKE").is_some() {
        1
    } else {
        10
    }
}

/// Append a hand-written row to the same JSONL file the criterion groups
/// record into (the recorder appends, so the streams interleave safely).
fn record_extra_row(fields: &str) {
    let Ok(dir) = std::env::var("FRAZ_BENCH_RECORD_DIR") else {
        return;
    };
    let path = std::path::PathBuf::from(dir).join("store_throughput.jsonl");
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(f, "{{{fields}}}");
    }
}

fn store_benchmarks(c: &mut Criterion) {
    let app = workloads::hurricane(Scale::Quick);
    let dataset = app.field("TCf", 0);
    let bound = dataset.stats().value_range() * 1e-3;
    // Chunks of 16x24x24 = 9216 elements: 8 chunks at Quick scale, big
    // enough to amortize the codecs' per-stream headers.
    let chunk = vec![16usize, 24, 24];

    let mut group = c.benchmark_group("store_throughput");
    group.throughput(Throughput::Bytes(dataset.byte_size() as u64));
    group.sample_size(sample_size());

    let config = StoreWriteConfig::new(chunk.clone(), "szx", ChunkTarget::FixedBound(bound));
    group.bench_function("write_fixed_bound", |b| {
        b.iter(|| {
            let store = MemoryStore::new();
            write_array(&store, "bench", &dataset, &config).unwrap()
        });
    });

    let store = MemoryStore::new();
    write_array(&store, "bench", &dataset, &config).unwrap();
    group.bench_function("read_full", |b| {
        b.iter(|| {
            let reader = ArrayReader::open(&store, "bench").unwrap();
            reader.read_all().unwrap()
        });
    });
    group.finish();

    // A z-slab covering one chunk layer: 1/2 of the chunks, 3/8 of the
    // bytes — the partial-decode path (open + ranged reads + scatter).
    let dims = dataset.dims.as_slice().to_vec();
    let slab = [
        0..chunk[0] as u64,
        0..dims[1] as u64,
        0..(dims[2] / 2) as u64,
    ];
    let slab_bytes: u64 = slab.iter().map(|r| r.end - r.start).product::<u64>()
        * dataset.buffer.dtype().byte_width() as u64;
    let mut group = c.benchmark_group("store_throughput");
    group.throughput(Throughput::Bytes(slab_bytes));
    group.sample_size(sample_size());
    group.bench_function("read_region_slab", |b| {
        b.iter(|| {
            let reader = ArrayReader::open(&store, "bench").unwrap();
            reader.read_region(&slab).unwrap()
        });
    });
    group.finish();

    // Warm-start ablation (not timed): per-chunk Ratio tuning with bound
    // propagation between chunks vs. fully independent searches.  On a
    // spatially coherent field the predecessor's converged bound seeds the
    // next chunk's search one prediction probe away from its answer.
    let target = ChunkTarget::Ratio {
        target_ratio: 8.0,
        tolerance: 0.15,
    };
    let mut evals = [0usize; 2];
    for (slot, warm) in evals.iter_mut().zip([true, false]) {
        let store = MemoryStore::new();
        let config = StoreWriteConfig::new(chunk.clone(), "sz", target.clone())
            .with_warm_start(warm)
            .with_regions(6)
            .with_max_iterations(16);
        let report = write_array(&store, "bench", &dataset, &config).unwrap();
        *slot = report.evaluations;
    }
    let [warm_evals, cold_evals] = evals;
    println!(
        "store_tuning/ratio_warm_start: {warm_evals} evaluations (cold: {cold_evals}, \
         saved {})",
        cold_evals.saturating_sub(warm_evals)
    );
    record_extra_row(&format!(
        "\"group\":\"store_tuning\",\"id\":\"ratio_warm_start\",\"evaluations\":{warm_evals},\
         \"cold_evaluations\":{cold_evals},\"evaluations_saved\":{}",
        cold_evals.saturating_sub(warm_evals)
    ));
}

criterion_group!(benches, store_benchmarks);
criterion_main!(benches);
