//! Criterion benchmarks for the fraz-serve wire protocol: request
//! encode/decode and frame round-trips at the payload sizes the service
//! actually moves (a status ping, a 64×64 compress job, a megabyte-class
//! store blob).  The protocol sits on every job's critical path, so a
//! slow decoder taxes the whole service; these rows keep it honest.
//!
//! `FRAZ_BENCH_SMOKE=1` drops to one timed sample per benchmark; CI
//! combines it with `FRAZ_BENCH_RECORD_DIR` to guard the committed
//! baseline rows against large regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_serve::proto::{read_frame, write_frame, Request, Response, MAX_FRAME_LEN};

/// One timed sample per point under `FRAZ_BENCH_SMOKE=1` (CI bitrot +
/// regression guard), ten otherwise.
fn sample_size() -> usize {
    if std::env::var_os("FRAZ_BENCH_SMOKE").is_some() {
        1
    } else {
        10
    }
}

fn request_corpus() -> Vec<(&'static str, Request)> {
    let app = workloads::hurricane(Scale::Quick);
    let dataset = app.field("TCf", 0);
    vec![
        ("status", Request::Status),
        (
            "compress_field",
            Request::Compress {
                deadline_ms: 250,
                target_ratio: 10.0,
                tolerance: 0.1,
                codec: "sz".into(),
                dataset,
            },
        ),
        (
            "put_1mib",
            Request::PutStore {
                key: "bench/blob".into(),
                blob: (0..1 << 20).map(|i| (i % 251) as u8).collect(),
            },
        ),
    ]
}

fn proto_benchmarks(c: &mut Criterion) {
    // Encode: typed request -> payload bytes.
    let mut group = c.benchmark_group("service_proto_encode");
    group.sample_size(sample_size());
    for (label, request) in request_corpus() {
        let bytes = request.encode().len() as u64;
        group.throughput(Throughput::Bytes(bytes));
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &request,
            |b, request| {
                b.iter(|| request.encode());
            },
        );
    }
    group.finish();

    // Decode: payload bytes -> typed request (the server's hot path; every
    // hostile-input bound the adversarial suite asserts is paid here).
    let mut group = c.benchmark_group("service_proto_decode");
    group.sample_size(sample_size());
    for (label, request) in request_corpus() {
        let payload = request.encode();
        group.throughput(Throughput::Bytes(payload.len() as u64));
        group.bench_with_input(
            BenchmarkId::from_parameter(label),
            &payload,
            |b, payload| {
                b.iter(|| Request::decode(payload).unwrap());
            },
        );
    }
    group.finish();

    // Frame round-trip: write_frame + read_frame over an in-memory wire,
    // response-side — the reply path of a compress job.
    let mut group = c.benchmark_group("service_proto_frame_roundtrip");
    group.sample_size(sample_size());
    let reply = Response::Compressed {
        error_bound: 1e-3,
        ratio: 10.2,
        feasible: true,
        evaluations: 9,
        blob: (0..256 << 10).map(|i| (i % 253) as u8).collect(),
    };
    let payload = reply.encode();
    group.throughput(Throughput::Bytes(payload.len() as u64));
    group.bench_function("compressed_reply_256kib", |b| {
        b.iter(|| {
            let mut wire = Vec::with_capacity(payload.len() + 4);
            write_frame(&mut wire, &payload).unwrap();
            let read = read_frame(&mut &wire[..], MAX_FRAME_LEN).unwrap();
            Response::decode(&read).unwrap()
        });
    });
    group.finish();
}

criterion_group!(benches, proto_benchmarks);
criterion_main!(benches);
