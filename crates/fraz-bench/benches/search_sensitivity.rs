//! Criterion benchmark behind Figure 7: how long one FRaZ search takes as a
//! function of the target compression ratio (feasible vs infeasible
//! targets) — plus the `search_sensitivity` evaluation-count rows that pin
//! the SearchHint seeding layer (analytic first guess, persistent tuning
//! cache) to its committed baselines.

use criterion::{criterion_group, BenchmarkId, Criterion};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_core::{
    FixedQualitySearch, FixedRatioSearch, QualityMetric, QualitySearchConfig, SearchConfig,
};
use fraz_pressio::registry;
use fraz_tune::CachePredictor;

fn search_benchmarks(c: &mut Criterion) {
    let app = workloads::hurricane(Scale::Quick);
    let dataset = app.field("CLOUDf", 0);

    let mut group = c.benchmark_group("fixed_ratio_search");
    group.sample_size(10);
    // 3:1 is typically below the SZ floor (infeasible, worst case); 10:1 and
    // 30:1 are feasible.
    for target in [3.0f64, 10.0, 30.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(target as u64),
            &target,
            |b, &t| {
                b.iter(|| {
                    let config = SearchConfig {
                        measure_final_quality: false,
                        max_iterations: 12,
                        ..SearchConfig::new(t, 0.1).with_regions(4).with_threads(4)
                    };
                    FixedRatioSearch::new(registry::build_default("sz").unwrap(), config)
                        .run(&dataset)
                });
            },
        );
    }
    group.finish();

    // Prediction reuse (Algorithm 1): the steady-state cost per time-step.
    let mut group = c.benchmark_group("prediction_reuse");
    group.sample_size(10);
    let config = SearchConfig {
        measure_final_quality: false,
        ..SearchConfig::new(10.0, 0.1).with_regions(4).with_threads(4)
    };
    let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
    let trained = search.run(&dataset);
    group.bench_function("with_good_prediction", |b| {
        b.iter(|| search.run_with_prediction(&dataset, Some(trained.error_bound)));
    });
    group.finish();
}

/// Append one `{"group":"search_sensitivity","id":ID,"evaluations":N}` row
/// next to the criterion records (same file, same `--check` tooling — the
/// metric is compressor invocations, which is machine-noise-free).
fn record_evaluations(id: &str, evaluations: usize) {
    println!("search_sensitivity/{id}: {evaluations} evaluation(s)");
    let Ok(dir) = std::env::var("FRAZ_BENCH_RECORD_DIR") else {
        return;
    };
    let dir = std::path::PathBuf::from(dir);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join("search_sensitivity.jsonl");
    let line =
        format!("{{\"group\":\"search_sensitivity\",\"id\":{id:?},\"evaluations\":{evaluations}}}");
    use std::io::Write;
    match std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        Ok(mut f) => {
            if let Err(e) = writeln!(f, "{line}") {
                eprintln!("warning: cannot write to {}: {e}", path.display());
            }
        }
        Err(e) => eprintln!("warning: cannot open {}: {e}", path.display()),
    }
}

fn quality_search(codec: &str, analytic: bool) -> FixedQualitySearch {
    let mut config = QualitySearchConfig::new(QualityMetric::PsnrAtLeast(60.0));
    config.analytic_seed = analytic;
    FixedQualitySearch::new(registry::build_default(codec).unwrap(), config)
}

/// How many compressor invocations each seeding mode spends; deterministic
/// counts, not wall-clock, so the committed baselines are exact.
fn evaluation_sensitivity() {
    let app = workloads::hurricane(Scale::Quick);
    let dataset = app.field("CLOUDf", 0);

    // Analytic first guess: the closed-form PSNR model of sz/szx against a
    // cold bracketing sweep on the same codec.
    for codec in ["sz", "szx"] {
        let cold = quality_search(codec, false).run(&dataset);
        let seeded = quality_search(codec, true).run(&dataset);
        record_evaluations(&format!("quality_{codec}_cold"), cold.evaluations);
        record_evaluations(&format!("quality_{codec}_analytic"), seeded.evaluations);
    }

    // Persistent tuning cache: a second run over the same field should be
    // one verified probe (ratio and quality alike).
    let dir = std::env::temp_dir().join(format!("fraz-bench-tune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let predictor = CachePredictor::open(&dir).expect("tune cache dir");

    let config = SearchConfig {
        measure_final_quality: false,
        max_iterations: 12,
        threads: 1,
        ..SearchConfig::new(10.0, 0.1).with_regions(4)
    };
    let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
    let cold = search.run_with_predictor(&dataset, &predictor);
    let warm = search.run_with_predictor(&dataset, &predictor);
    record_evaluations("ratio_cold", cold.evaluations);
    record_evaluations("ratio_warm_cache", warm.evaluations);

    let qsearch = quality_search("sz", true);
    let _ = qsearch.run_with_predictor(&dataset, &predictor);
    let warm = qsearch.run_with_predictor(&dataset, &predictor);
    record_evaluations("quality_warm_cache", warm.evaluations);

    let _ = std::fs::remove_dir_all(&dir);
}

/// Search effort per synthetic scenario regime: the analytic-seeded quality
/// search and a single-threaded fixed-ratio search over every regime's
/// canonical 1-D field.  Evaluation counts are deterministic, so the
/// committed rows are per-scenario ceilings — a regime whose structure
/// stops matching its seeding assumptions (e.g. the PSNR model drifting on
/// shocks) shows up as an exact count jump on its own row.
fn scenario_sensitivity() {
    let dims = fraz_data::Dims::d1(8192);
    for config in fraz_scenarios::all_scenarios(fraz_bench::EXPERIMENT_SEED) {
        let field = config.generate(&dims, fraz_data::DType::F32, 0);
        let regime = field.descriptor.name;

        let quality = quality_search("sz", true).run(&field.dataset);
        record_evaluations(&format!("scenario_{regime}_quality"), quality.evaluations);

        // 4:1 is feasible for every regime under sz (even noise reaches it
        // at a loose bound), so the counts measure convergence, not bailout.
        let search_config = SearchConfig {
            measure_final_quality: false,
            max_iterations: 16,
            threads: 1,
            ..SearchConfig::new(4.0, 0.1).with_regions(4)
        };
        let ratio = FixedRatioSearch::new(registry::build_default("sz").unwrap(), search_config)
            .run(&field.dataset);
        record_evaluations(&format!("scenario_{regime}_ratio"), ratio.evaluations);
    }
}

criterion_group!(benches, search_benchmarks);

fn main() {
    benches();
    evaluation_sensitivity();
    scenario_sensitivity();
}
