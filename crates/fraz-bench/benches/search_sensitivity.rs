//! Criterion benchmark behind Figure 7: how long one FRaZ search takes as a
//! function of the target compression ratio (feasible vs infeasible
//! targets).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_core::{FixedRatioSearch, SearchConfig};
use fraz_pressio::registry;

fn search_benchmarks(c: &mut Criterion) {
    let app = workloads::hurricane(Scale::Quick);
    let dataset = app.field("CLOUDf", 0);

    let mut group = c.benchmark_group("fixed_ratio_search");
    group.sample_size(10);
    // 3:1 is typically below the SZ floor (infeasible, worst case); 10:1 and
    // 30:1 are feasible.
    for target in [3.0f64, 10.0, 30.0] {
        group.bench_with_input(
            BenchmarkId::from_parameter(target as u64),
            &target,
            |b, &t| {
                b.iter(|| {
                    let config = SearchConfig {
                        measure_final_quality: false,
                        max_iterations: 12,
                        ..SearchConfig::new(t, 0.1).with_regions(4).with_threads(4)
                    };
                    FixedRatioSearch::new(registry::build_default("sz").unwrap(), config)
                        .run(&dataset)
                });
            },
        );
    }
    group.finish();

    // Prediction reuse (Algorithm 1): the steady-state cost per time-step.
    let mut group = c.benchmark_group("prediction_reuse");
    group.sample_size(10);
    let config = SearchConfig {
        measure_final_quality: false,
        ..SearchConfig::new(10.0, 0.1).with_regions(4).with_threads(4)
    };
    let search = FixedRatioSearch::new(registry::build_default("sz").unwrap(), config);
    let trained = search.run(&dataset);
    group.bench_function("with_good_prediction", |b| {
        b.iter(|| search.run_with_prediction(&dataset, Some(trained.error_bound)));
    });
    group.finish();
}

criterion_group!(benches, search_benchmarks);
criterion_main!(benches);
