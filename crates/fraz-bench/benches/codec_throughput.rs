//! Criterion benchmarks: raw compression / decompression throughput of the
//! three codec substrates at a fixed value-range-relative error bound.
//!
//! These are the building-block costs behind every FRaZ search (each search
//! iteration is one compression), so regressions here inflate every figure's
//! runtime.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_pressio::registry;

fn codec_benchmarks(c: &mut Criterion) {
    let app = workloads::hurricane(Scale::Quick);
    let dataset = app.field("TCf", 0);
    let bound = dataset.stats().value_range() * 1e-3;

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(dataset.byte_size() as u64));
    group.sample_size(10);
    for name in ["sz", "zfp", "mgard"] {
        let backend = registry::build_default(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &dataset, |b, d| {
            b.iter(|| backend.compress(d, bound).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(dataset.byte_size() as u64));
    group.sample_size(10);
    for name in ["sz", "zfp", "mgard"] {
        let backend = registry::build_default(name).unwrap();
        let compressed = backend.compress(&dataset, bound).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &compressed, |b, data| {
            b.iter(|| backend.decompress(data).unwrap());
        });
    }
    group.finish();

    // The dictionary stage on its own (SZ's stage 4 substrate).
    let mut group = c.benchmark_group("lossless_dictionary");
    let bytes = dataset.buffer.to_le_bytes();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.sample_size(10);
    group.bench_function("lzss_compress", |b| {
        b.iter(|| fraz_lossless::compress(&bytes));
    });
    let packed = fraz_lossless::compress(&bytes);
    group.bench_function("lzss_decompress", |b| {
        b.iter(|| fraz_lossless::decompress(&packed).unwrap());
    });
    group.finish();
}

criterion_group!(benches, codec_benchmarks);
criterion_main!(benches);
