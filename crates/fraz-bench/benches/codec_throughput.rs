//! Criterion benchmarks: raw compression / decompression throughput of the
//! three codec substrates at a fixed value-range-relative error bound, plus
//! stage-level micro-groups for the lossless substrate (dictionary coder,
//! Huffman entropy stage, bit I/O) so a regression in one stage is visible
//! on its own row instead of being smeared across the codec numbers.
//!
//! These are the building-block costs behind every FRaZ search (each search
//! iteration is one compression), so regressions here inflate every figure's
//! runtime.  `FRAZ_BENCH_SMOKE=1` drops to one timed sample per benchmark;
//! CI combines it with `FRAZ_BENCH_RECORD_DIR` to guard the committed
//! `baselines/codec_throughput.jsonl` rows against large regressions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_lossless::bitio::{BitReader, BitWriter};
use fraz_lossless::huffman;
use fraz_pressio::registry;

/// One timed sample per point under `FRAZ_BENCH_SMOKE=1` (CI bitrot +
/// regression guard), ten otherwise.
fn sample_size() -> usize {
    if std::env::var_os("FRAZ_BENCH_SMOKE").is_some() {
        1
    } else {
        10
    }
}

/// SZ-like quantization codes for the Huffman micro-group: first-order
/// deltas of the real field, linearly quantized around a centre code — the
/// same skewed, mid-heavy distribution the codec's stage 3 sees.
fn quantization_codes(values: &[f64], error_bound: f64) -> Vec<u32> {
    let centre = 32768i64;
    let mut prev = 0.0f64;
    values
        .iter()
        .map(|&v| {
            let code = centre + ((v - prev) / (2.0 * error_bound)).round().clamp(-3e4, 3e4) as i64;
            prev = v;
            code as u32
        })
        .collect()
}

/// Deterministic mixed-width fields for the bit I/O micro-group (widths and
/// values from a fixed LCG, 1..=24 bits each — the range Huffman codes and
/// distance extras actually use).
fn bitio_fields() -> Vec<(u64, u32)> {
    let mut state = 0x00C0_FFEEu64;
    (0..200_000)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let width = 1 + ((state >> 33) % 24) as u32;
            let value = (state >> 8) & ((1u64 << width) - 1);
            (value, width)
        })
        .collect()
}

fn codec_benchmarks(c: &mut Criterion) {
    let app = workloads::hurricane(Scale::Quick);
    let dataset = app.field("TCf", 0);
    let bound = dataset.stats().value_range() * 1e-3;

    let mut group = c.benchmark_group("compress");
    group.throughput(Throughput::Bytes(dataset.byte_size() as u64));
    group.sample_size(sample_size());
    for name in ["sz", "zfp", "mgard", "szx"] {
        let backend = registry::build_default(name).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &dataset, |b, d| {
            b.iter(|| backend.compress(d, bound).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("decompress");
    group.throughput(Throughput::Bytes(dataset.byte_size() as u64));
    group.sample_size(sample_size());
    for name in ["sz", "zfp", "mgard", "szx"] {
        let backend = registry::build_default(name).unwrap();
        let compressed = backend.compress(&dataset, bound).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(name), &compressed, |b, data| {
            b.iter(|| backend.decompress(data).unwrap());
        });
    }
    group.finish();

    // The dictionary stage on its own (SZ's stage 4 substrate).
    let mut group = c.benchmark_group("lossless_dictionary");
    let bytes = dataset.buffer.to_le_bytes();
    group.throughput(Throughput::Bytes(bytes.len() as u64));
    group.sample_size(sample_size());
    group.bench_function("lzss_compress", |b| {
        b.iter(|| fraz_lossless::compress(&bytes));
    });
    let packed = fraz_lossless::compress(&bytes);
    group.bench_function("lzss_decompress", |b| {
        b.iter(|| fraz_lossless::decompress(&packed).unwrap());
    });
    group.finish();

    // The entropy stage on its own (SZ's stage 3 substrate): canonical
    // Huffman over a realistic skewed quantization-code stream.
    let symbols = quantization_codes(&dataset.values_f64(), bound);
    let mut group = c.benchmark_group("huffman");
    group.throughput(Throughput::Bytes((symbols.len() * 4) as u64));
    group.sample_size(sample_size());
    group.bench_function("huffman_encode", |b| {
        b.iter(|| huffman::encode_symbols(&symbols));
    });
    let packed = huffman::encode_symbols(&symbols);
    group.bench_function("huffman_decode", |b| {
        b.iter(|| huffman::decode_symbols(&packed).unwrap());
    });
    group.finish();

    // The bit layer under everything: mixed-width writes and reads.
    let fields = bitio_fields();
    let total_bits: u64 = fields.iter().map(|&(_, w)| w as u64).sum();
    let mut group = c.benchmark_group("bitio");
    group.throughput(Throughput::Bytes(total_bits / 8));
    group.sample_size(sample_size());
    group.bench_function("bitio_write", |b| {
        b.iter(|| {
            let mut w = BitWriter::with_capacity((total_bits / 8 + 1) as usize);
            for &(v, n) in &fields {
                w.write_bits(v, n);
            }
            w.into_bytes()
        });
    });
    let written = {
        let mut w = BitWriter::with_capacity((total_bits / 8 + 1) as usize);
        for &(v, n) in &fields {
            w.write_bits(v, n);
        }
        w.into_bytes()
    };
    group.bench_function("bitio_read", |b| {
        b.iter(|| {
            let mut r = BitReader::new(&written);
            let mut acc = 0u64;
            for &(_, n) in &fields {
                acc ^= r.read_bits(n).unwrap();
            }
            acc
        });
    });
    group.finish();
}

criterion_group!(benches, codec_benchmarks);
criterion_main!(benches);
