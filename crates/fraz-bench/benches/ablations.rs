//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * the early-termination cutoff (the paper's Dlib modification),
//! * time-step prediction reuse (Algorithm 1's `p`),
//! * the number of overlapping regions (the paper's default of 12),
//! * linear vs logarithmic region layout (this reproduction's refinement).
//!
//! Each variant runs the same fixed-ratio task; the measured time difference
//! is the cost/benefit of the design choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use fraz_bench::scale::Scale;
use fraz_bench::workloads;
use fraz_core::{BoundScale, FixedRatioSearch, Orchestrator, OrchestratorConfig, SearchConfig};
use fraz_pressio::registry;

fn base_config() -> SearchConfig {
    SearchConfig {
        measure_final_quality: false,
        max_iterations: 12,
        ..SearchConfig::new(10.0, 0.1).with_regions(4).with_threads(4)
    }
}

fn ablation_benchmarks(c: &mut Criterion) {
    let app = workloads::hurricane(Scale::Quick);
    let dataset = app.field("TCf", 0);

    // 1. Early-termination cutoff on/off.
    let mut group = c.benchmark_group("ablation_cutoff");
    group.sample_size(10);
    for (label, use_cutoff) in [("with_cutoff", true), ("without_cutoff", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = SearchConfig {
                    use_cutoff,
                    ..base_config()
                };
                FixedRatioSearch::new(registry::build_default("sz").unwrap(), config).run(&dataset)
            });
        });
    }
    group.finish();

    // 2. Prediction reuse across a short time series.
    let series: Vec<_> = app.series("TCf").into_iter().take(3).collect();
    let mut group = c.benchmark_group("ablation_prediction_reuse");
    group.sample_size(10);
    for (label, reuse) in [("reuse", true), ("retrain_every_step", false)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let orch = Orchestrator::new(
                    "sz",
                    OrchestratorConfig {
                        total_workers: 4,
                        reuse_prediction: reuse,
                        ..OrchestratorConfig::new(base_config())
                    },
                )
                .unwrap();
                orch.run_series("TCf", &series, 4)
            });
        });
    }
    group.finish();

    // 3. Number of overlapping regions.
    let mut group = c.benchmark_group("ablation_regions");
    group.sample_size(10);
    for regions in [1usize, 4, 12] {
        group.bench_with_input(BenchmarkId::from_parameter(regions), &regions, |b, &r| {
            b.iter(|| {
                let config = base_config().with_regions(r).with_threads(r);
                FixedRatioSearch::new(registry::build_default("sz").unwrap(), config).run(&dataset)
            });
        });
    }
    group.finish();

    // 4. Linear vs logarithmic region layout.
    let mut group = c.benchmark_group("ablation_bound_scale");
    group.sample_size(10);
    for (label, scale) in [("log", BoundScale::Log), ("linear", BoundScale::Linear)] {
        group.bench_function(label, |b| {
            b.iter(|| {
                let config = SearchConfig {
                    scale,
                    ..base_config()
                };
                FixedRatioSearch::new(registry::build_default("sz").unwrap(), config).run(&dataset)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_benchmarks);
criterion_main!(benches);
