//! Minimal fixed-width console tables for the experiment binaries.

/// A simple console table with a header row and formatted body rows.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (cells are formatted by the caller).
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Number of body rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as a string with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    format!(
                        "{:>width$}",
                        c,
                        width = widths.get(i).copied().unwrap_or(c.len())
                    )
                })
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["name", "ratio"]);
        t.row(vec!["sz".into(), "10.02".into()]);
        t.row(vec!["mgard-l2".into(), "9.7".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].ends_with("10.02"));
        assert!(lines[3].starts_with("mgard-l2"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = Table::new(&["a", "b", "c"]);
        assert!(t.is_empty());
        assert_eq!(t.render().lines().count(), 2);
    }
}
