//! §V-B1 iteration-count comparison: FRaZ's modified global optimizer vs
//! plain binary search (the paper reports 6 vs 39 iterations for the
//! Hurricane CLOUD field at ρt = 8).
//!
//! Also serves as the optimizer ablation: it reports the global minimizer
//! with and without the early-termination cutoff, and a uniform grid sweep.
//!
//! Run with `cargo run --release -p fraz-bench --bin tab_iterations`.

use fraz_bench::records::{append, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_core::{binary_search, grid_search, GlobalMinimizer, OptimizerConfig, RatioLoss};
use fraz_pressio::registry;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Optimizer comparison (paper §V-B1) (scale: {}) ==\n",
        scale.label()
    );
    let dataset = workloads::hurricane(scale).field("CLOUDf", 0);
    let sz = registry::build_default("sz").unwrap();
    let (lo, hi) = sz.bound_range(&dataset);
    println!("dataset: {dataset}");
    println!("error-bound range: [{lo:.3e}, {hi:.3e}]\n");

    let mut table = Table::new(&["method", "target", "iterations", "ratio found", "converged"]);
    let mut records = Vec::new();
    for &target in &[8.0f64, 15.0] {
        let loss = RatioLoss::new(target, 0.1);
        let budget = 48usize;

        // The MaxLIPO+TR variants search the same log-scaled axis FRaZ's
        // region search uses (error bounds span ~9 decades); binary search
        // and the uniform grid operate on the raw bound, as a user would.
        let mut objective = |x: f64| {
            let outcome = sz.evaluate(&dataset, 10f64.powf(x), false);
            match outcome {
                Ok(o) => (loss.loss(o.compression_ratio), o.compression_ratio),
                Err(_) => (loss.gamma, 0.0),
            }
        };

        // FRaZ's optimizer with the early-termination cutoff.
        let fraz = GlobalMinimizer::new(OptimizerConfig {
            max_evaluations: budget,
            cutoff: loss.cutoff(),
            ..Default::default()
        })
        .minimize(&mut objective, lo.log10(), hi.log10(), None);

        // The same optimizer without the cutoff (pure Dlib behaviour).
        let mut objective2 = |x: f64| {
            let outcome = sz.evaluate(&dataset, 10f64.powf(x), false);
            match outcome {
                Ok(o) => (loss.loss(o.compression_ratio), o.compression_ratio),
                Err(_) => (loss.gamma, 0.0),
            }
        };
        let no_cutoff = GlobalMinimizer::new(OptimizerConfig {
            max_evaluations: budget,
            cutoff: 0.0,
            ..Default::default()
        })
        .minimize(&mut objective2, lo.log10(), hi.log10(), None);

        // Binary search on the ratio.
        let mut objective3 = |bound: f64| {
            let outcome = sz.evaluate(&dataset, bound, false);
            match outcome {
                Ok(o) => (loss.loss(o.compression_ratio), o.compression_ratio),
                Err(_) => (loss.gamma, 0.0),
            }
        };
        let bisect = binary_search(&mut objective3, lo, hi, target, 0.1, budget);

        // Uniform grid sweep with the same acceptance cutoff.
        let mut objective4 = |bound: f64| {
            let outcome = sz.evaluate(&dataset, bound, false);
            match outcome {
                Ok(o) => (loss.loss(o.compression_ratio), o.compression_ratio),
                Err(_) => (loss.gamma, 0.0),
            }
        };
        let grid = grid_search(&mut objective4, lo, hi, budget, loss.cutoff());

        for (name, trace) in [
            ("FRaZ (MaxLIPO+TR, cutoff)", &fraz),
            ("MaxLIPO+TR, no cutoff", &no_cutoff),
            ("binary search", &bisect),
            ("uniform grid", &grid),
        ] {
            let converged = loss.is_acceptable(trace.best.ratio);
            table.row(vec![
                name.to_string(),
                format!("{target}:1"),
                trace.iterations().to_string(),
                format!("{:.2}", trace.best.ratio),
                converged.to_string(),
            ]);
            records.push(Record::new(
                "tab_iterations",
                &format!("{name}@{target}"),
                json!({"target": target, "iterations": trace.iterations(),
                       "ratio": trace.best.ratio, "converged": converged}),
            ));
        }
    }
    table.print();
    append("tab_iterations", &records);
    println!("\nPaper expectation: the cutoff-modified global optimizer converges in far fewer");
    println!("compressor invocations than binary search (6 vs 39 in the paper's example), and");
    println!("binary search can fail outright when the ratio is not monotone in the bound.");
}
