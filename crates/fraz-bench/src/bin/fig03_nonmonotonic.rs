//! Figure 3: the relationship between error bound and compression ratio is
//! not always monotonic (SZ on the Hurricane QCLOUDf.log10 field).
//!
//! Sweeps the SZ error bound over the same range the paper plots and reports
//! the compression ratio at each bound, counting the "dips" (places where a
//! larger bound produced a *smaller* ratio) that break binary search.
//!
//! Run with `cargo run --release -p fraz-bench --bin fig03_nonmonotonic`.

use fraz_bench::records::{append, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_pressio::registry;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 3: non-monotonic ratio vs error bound (scale: {}) ==\n",
        scale.label()
    );
    let dataset = workloads::hurricane(scale).field("QCLOUDf.log10", 0);
    println!("dataset: {dataset}\n");

    let sz = registry::build_default("sz").unwrap();
    let points = scale.pick(56, 112);
    let upper = 0.55 * dataset.stats().value_range() / 8.0; // comparable span to the paper's 0–0.55 on log10 data
    let mut table = Table::new(&["error bound", "compression ratio"]);
    let mut series = Vec::new();
    for i in 1..=points {
        let bound = upper * i as f64 / points as f64;
        let outcome = sz.evaluate(&dataset, bound, false).unwrap();
        series.push((bound, outcome.compression_ratio));
        if i % scale.pick(4, 8) == 0 {
            table.row(vec![
                format!("{bound:.4}"),
                format!("{:.2}", outcome.compression_ratio),
            ]);
        }
    }
    table.print();

    // Count monotonicity violations.
    let mut dips = 0usize;
    let mut largest_dip = 0.0f64;
    for w in series.windows(2) {
        if w[1].1 < w[0].1 {
            dips += 1;
            largest_dip = largest_dip.max(w[0].1 - w[1].1);
        }
    }
    println!("\nsweep points                 : {}", series.len());
    println!("monotonicity violations (dips): {dips}");
    println!("largest single dip            : {largest_dip:.2} in ratio");
    println!(
        "\nPaper expectation: the curve is spiky — the ratio sometimes *decreases* as the bound"
    );
    println!("grows, because the Huffman tree and the dictionary stage react discontinuously.");

    let records: Vec<Record> = series
        .iter()
        .map(|(bound, ratio)| {
            Record::new(
                "fig03",
                "sweep",
                json!({"error_bound": bound, "ratio": ratio}),
            )
        })
        .chain(std::iter::once(Record::new(
            "fig03",
            "summary",
            json!({"points": series.len(), "dips": dips, "largest_dip": largest_dip}),
        )))
        .collect();
    append("fig03", &records);
}
