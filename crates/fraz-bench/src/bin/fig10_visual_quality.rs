//! Figure 10: visual quality of the NYX temperature field at a common
//! ~85:1 compression ratio.
//!
//! The paper wanted 100:1 but settled on ~85:1 because that is the closest
//! ratio ZFP's accuracy mode can express; this binary does the same: it asks
//! FRaZ for 85:1 from SZ, ZFP and MGARD, evaluates ZFP's fixed-rate mode at
//! the equivalent rate, reports PSNR / SSIM / ACF(error) for each, and dumps
//! the central 2-D slice of every reconstruction as a PGM image next to the
//! results so they can be inspected visually.
//!
//! Run with `cargo run --release -p fraz-bench --bin fig10_visual_quality`.

use std::fs;
use std::path::PathBuf;

use fraz_bench::records::{append, results_dir, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_core::{FixedRatioSearch, SearchConfig};
use fraz_data::Dataset;
use fraz_pressio::registry;
use serde_json::json;

/// Write a 2-D slice as an 8-bit PGM image (grayscale, min..max scaled).
fn write_pgm(path: &PathBuf, rows: usize, cols: usize, values: &[f64]) {
    let lo = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let range = (hi - lo).max(f64::MIN_POSITIVE);
    let mut out = format!("P5\n{cols} {rows}\n255\n").into_bytes();
    out.extend(values.iter().map(|&v| (255.0 * (v - lo) / range) as u8));
    if let Err(e) = fs::write(path, out) {
        eprintln!("warning: cannot write {}: {e}", path.display());
    }
}

fn central_slice(dataset: &Dataset) -> (usize, usize, Vec<f64>) {
    dataset.slice2d(dataset.dims.as_slice()[0] / 2)
}

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 10: visual quality at ~85:1 (NYX temperature) (scale: {}) ==\n",
        scale.label()
    );
    let app = workloads::nyx(scale);
    let dataset = app.field("temperature", 0);
    println!("dataset: {dataset}\n");
    let target_ratio = 85.0;

    let out_dir = results_dir().join("fig10_slices");
    fs::create_dir_all(&out_dir).ok();
    let (rows, cols, original_slice) = central_slice(&dataset);
    write_pgm(&out_dir.join("original.pgm"), rows, cols, &original_slice);

    let mut table = Table::new(&[
        "compressor",
        "ratio",
        "PSNR",
        "SSIM",
        "ACF(error)",
        "max error",
    ]);
    let mut records = Vec::new();
    let mut emit = |name: &str, ratio: f64, restored: &Dataset, compressed_bytes: usize| {
        let quality = fraz_metrics::QualityReport::evaluate(&dataset, restored, compressed_bytes);
        let (r, c, slice) = central_slice(restored);
        write_pgm(&out_dir.join(format!("{name}.pgm")), r, c, &slice);
        table.row(vec![
            name.to_string(),
            format!("{ratio:.1}"),
            format!("{:.1}", quality.psnr),
            format!("{:.4}", quality.ssim),
            format!("{:.3}", quality.acf_error),
            format!("{:.3e}", quality.max_abs_error),
        ]);
        records.push(Record::new(
            "fig10",
            name,
            json!({"ratio": ratio, "psnr": quality.psnr, "ssim": quality.ssim,
                   "acf_error": quality.acf_error, "max_error": quality.max_abs_error}),
        ));
    };

    // FRaZ-tuned error-bounded compressors.
    for name in ["sz", "zfp", "mgard"] {
        let backend = registry::build_default(name).unwrap();
        if !backend.supports_dims(&dataset.dims) {
            continue;
        }
        let config = SearchConfig::new(target_ratio, 0.15)
            .with_regions(6)
            .with_threads(6);
        let search = FixedRatioSearch::new(backend, config);
        let outcome = search.run(&dataset);
        let compressed = search
            .compressor()
            .compress(&dataset, outcome.error_bound)
            .expect("recommended bound compresses");
        let restored = search.compressor().decompress(&compressed).unwrap();
        emit(
            &format!("{name}_fraz"),
            outcome.best.compression_ratio,
            &restored,
            compressed.len(),
        );
    }

    // ZFP fixed-rate at the equivalent rate.
    let rate_backend = registry::build_default("zfp-rate").unwrap();
    let bits_per_value = 32.0 / target_ratio;
    let compressed = rate_backend.compress(&dataset, bits_per_value).unwrap();
    let restored = rate_backend.decompress(&compressed).unwrap();
    emit(
        "zfp_fixed_rate",
        dataset.byte_size() as f64 / compressed.len() as f64,
        &restored,
        compressed.len(),
    );

    table.print();
    append("fig10", &records);
    println!("\nslice images written to {}", out_dir.display());
    println!("Paper expectation (Fig 10): SZ(FRaZ) has the highest PSNR/SSIM, ZFP(FRaZ) clearly");
    println!("beats ZFP(fixed-rate), and MGARD(FRaZ) trails the others on this field.");
}
