//! Figure 4: the autotuning loss function.
//!
//! Left panel: a typical relationship between the error bound and the
//! compression ratio (here: ZFP accuracy mode, whose minexp flooring yields
//! the staircase the paper sketches).  Right panel: the corresponding
//! clamped-square loss ("distance from objective") with the acceptable
//! region marked.
//!
//! Run with `cargo run --release -p fraz-bench --bin fig04_loss_function`.

use fraz_bench::records::{append, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_core::RatioLoss;
use fraz_pressio::registry;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 4: ratio landscape and loss function (scale: {}) ==\n",
        scale.label()
    );
    let dataset = workloads::hurricane(scale).field("TCf", 0);
    let zfp = registry::build_default("zfp").unwrap();

    let target_ratio = 15.0;
    let tolerance = 0.1;
    let loss = RatioLoss::new(target_ratio, tolerance);
    println!(
        "target ratio {target_ratio}:1, acceptable region [{:.1}, {:.1}], cutoff {:.2}\n",
        target_ratio * (1.0 - tolerance),
        target_ratio * (1.0 + tolerance),
        loss.cutoff()
    );

    let points = scale.pick(40, 80);
    let (lo, hi) = zfp.bound_range(&dataset);
    let mut table = Table::new(&["error bound", "ratio", "loss", "acceptable"]);
    let mut records = Vec::new();
    let mut feasible_points = 0usize;
    for i in 0..points {
        // Log-spaced sweep so the staircase structure is visible.
        let t = i as f64 / (points - 1) as f64;
        let bound = lo * (hi / lo).powf(t);
        let outcome = zfp.evaluate(&dataset, bound, false).unwrap();
        let l = loss.loss(outcome.compression_ratio);
        let ok = loss.is_acceptable(outcome.compression_ratio);
        feasible_points += ok as usize;
        table.row(vec![
            format!("{bound:.3e}"),
            format!("{:.2}", outcome.compression_ratio),
            if l >= 1e6 {
                format!("{l:.2e}")
            } else {
                format!("{l:.2}")
            },
            if ok { "yes".into() } else { "".into() },
        ]);
        records.push(Record::new(
            "fig04",
            "sweep",
            json!({"error_bound": bound, "ratio": outcome.compression_ratio, "loss": l, "acceptable": ok}),
        ));
    }
    table.print();
    println!("\npoints inside the acceptable region: {feasible_points} / {points}");
    println!("(if zero, the requested ratio is infeasible for this compressor — the situation");
    println!(" the right panel of Fig. 4 illustrates with the acceptable band below the curve)");
    append("fig04", &records);
}
