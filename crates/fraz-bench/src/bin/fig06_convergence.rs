//! Figure 6: per-time-step convergence on the Hurricane CLOUD field.
//!
//! (a) a "bad" case — ρt = 15 becomes infeasible as the field evolves, so
//! the achieved ratio oscillates around the target; (b) a "good" case —
//! ρt = 8 converges on almost every time-step and the error bound found for
//! one step is reused for the next (the paper retrains only 4 times in 48
//! steps).
//!
//! Run with `cargo run --release -p fraz-bench --bin fig06_convergence`.

use fraz_bench::records::{append, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_core::{Orchestrator, OrchestratorConfig, SearchConfig};
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 6: good vs bad convergence across time-steps (scale: {}) ==\n",
        scale.label()
    );
    let app = workloads::hurricane(scale);
    let field = "CLOUDf";
    let series = app.series(field);
    println!(
        "field {field}, {} time-steps, grid {}\n",
        series.len(),
        app.dims()
    );

    // Which of the two targets is the "good" (feasible) one depends on the
    // data: on the paper's real Hurricane-CLOUD field ρt=8 converges and
    // ρt=15 does not; the synthetic stand-in compresses more easily, so the
    // roles can swap.  Both cases are run and labelled by their measured
    // convergence rate below.
    let mut records = Vec::new();
    for (case, target) in [("case A (rho_t = 8)", 8.0), ("case B (rho_t = 15)", 15.0)] {
        let search = SearchConfig::new(target, 0.1)
            .with_regions(6)
            .with_threads(6);
        let orch = Orchestrator::new("sz", OrchestratorConfig::new(search)).unwrap();
        let outcome = orch.run_series(field, &series, 6);

        println!("-- {case} --");
        let mut table = Table::new(&["step", "ratio", "in window", "retrained", "calls"]);
        for (t, step) in outcome.steps.iter().enumerate() {
            table.row(vec![
                t.to_string(),
                format!("{:.2}", step.best.compression_ratio),
                step.feasible.to_string(),
                step.retrained.to_string(),
                step.evaluations.to_string(),
            ]);
            records.push(Record::new(
                "fig06",
                &format!("{case}/step{t}"),
                json!({"target": target, "step": t, "ratio": step.best.compression_ratio,
                       "feasible": step.feasible, "retrained": step.retrained}),
            ));
        }
        table.print();
        let verdict = if outcome.convergence_rate() >= 0.75 {
            "good convergence case"
        } else {
            "bad convergence case (target infeasible on most steps)"
        };
        println!(
            "convergence rate: {:.0}% ({verdict})   retrained on steps {:?}   total compressor calls {}\n",
            outcome.convergence_rate() * 100.0,
            outcome.retrain_steps,
            outcome.total_evaluations()
        );
        records.push(Record::new(
            "fig06",
            &format!("{case}/summary"),
            json!({"target": target, "convergence_rate": outcome.convergence_rate(),
                   "retrains": outcome.retrain_steps.len(), "steps": outcome.steps.len()}),
        ));
    }
    append("fig06", &records);
    println!("Paper expectation: one target converges on >90% of steps with only a handful of");
    println!("retrains (Fig 6b), while the other oscillates above/below the target because it");
    println!("is infeasible on most time-steps (Fig 6a).");
}
