//! Figure 7: sensitivity of FRaZ's runtime to the choice of target ratio.
//!
//! For every target ratio ρt in 2..=29 the whole CLOUD-field time series is
//! tuned and the total wall-clock time and the share of it spent inside the
//! compressor are reported.  Low targets sit below the compressor's
//! effective ratio floor and never converge, so they burn the full search
//! budget on every step — the tall bars at the left of the paper's figure.
//!
//! Run with `cargo run --release -p fraz-bench --bin fig07_sensitivity`.

use std::time::Instant;

use fraz_bench::records::{append, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_core::{Orchestrator, OrchestratorConfig, SearchConfig};
use fraz_pressio::registry;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 7: runtime sensitivity to the target ratio (scale: {}) ==\n",
        scale.label()
    );
    let app = workloads::hurricane(scale);
    let field = "CLOUDf";
    // A shorter series keeps the 28-point sweep tractable at quick scale.
    let steps = scale.pick(4, 12);
    let series: Vec<_> = app.series(field).into_iter().take(steps).collect();
    println!(
        "field {field}, {} time-steps, grid {}\n",
        series.len(),
        app.dims()
    );

    // Estimate the per-call compression time once, to split "total" vs
    // "compression" time the way the paper's stacked bars do.
    let sz = registry::build_default("sz").unwrap();
    let probe_bound = series[0].stats().value_range() * 1e-3;
    let probe_start = Instant::now();
    let probe_runs = 3;
    for _ in 0..probe_runs {
        let _ = sz.evaluate(&series[0], probe_bound, false).unwrap();
    }
    let per_call = probe_start.elapsed() / probe_runs;

    let targets: Vec<f64> = (2..=29).map(|t| t as f64).collect();
    let targets: Vec<f64> = if scale == Scale::Quick {
        targets.into_iter().step_by(3).collect()
    } else {
        targets
    };

    let mut table = Table::new(&[
        "target",
        "total time (s)",
        "compression time (s)",
        "calls",
        "converged steps",
    ]);
    let mut records = Vec::new();
    for &target in &targets {
        let search = SearchConfig {
            measure_final_quality: false,
            ..SearchConfig::new(target, 0.1)
                .with_regions(6)
                .with_threads(6)
        };
        let orch = Orchestrator::new("sz", OrchestratorConfig::new(search)).unwrap();
        let start = Instant::now();
        let outcome = orch.run_series(field, &series, 6);
        let total = start.elapsed();
        let calls = outcome.total_evaluations();
        let compression_time = per_call * calls as u32;
        let converged = outcome.steps.iter().filter(|s| s.feasible).count();
        table.row(vec![
            format!("{target:.0}"),
            format!("{:.2}", total.as_secs_f64()),
            format!("{:.2}", compression_time.as_secs_f64()),
            calls.to_string(),
            format!("{converged}/{}", outcome.steps.len()),
        ]);
        records.push(Record::new(
            "fig07",
            &format!("target_{target}"),
            json!({"target": target, "total_seconds": total.as_secs_f64(),
                   "compression_seconds": compression_time.as_secs_f64(),
                   "calls": calls, "converged": converged, "steps": outcome.steps.len()}),
        ));
    }
    table.print();
    append("fig07", &records);
    println!("\nPaper expectation: targets below the compressor's effective ratio floor (~7.5 in");
    println!("the paper) never converge and take roughly an order of magnitude longer than");
    println!("feasible targets, whose time-steps converge quickly and reuse predictions.");
}
