//! Figure 8: strong scaling of the parallel orchestrator.
//!
//! The paper sweeps 36–252 MPI ranks on Bebop for `sz:abs` and
//! `zfp:accuracy`; this reproduction sweeps worker threads over the same
//! task graph (regions x fields x time-steps).  The expected shape — steep
//! improvement while fields can still be spread out, then a floor set by the
//! single longest-running field — is a property of the task graph, not of
//! MPI (DESIGN.md §2).
//!
//! Run with `cargo run --release -p fraz-bench --bin fig08_scalability`.

use fraz_bench::records::{append, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_core::{Orchestrator, OrchestratorConfig, SearchConfig};
use fraz_data::Dataset;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 8: strong scaling (scale: {}) ==\n",
        scale.label()
    );
    let app = workloads::hurricane(scale);
    let steps = scale.pick(2, 6);
    let fields: Vec<(String, Vec<Dataset>)> = app
        .field_names()
        .into_iter()
        .map(|f| {
            let series: Vec<_> = app.series(&f).into_iter().take(steps).collect();
            (f, series)
        })
        .collect();
    println!(
        "{} fields x {} time-steps, grid {}\n",
        fields.len(),
        steps,
        app.dims()
    );

    let worker_counts: Vec<usize> = scale.pick(vec![1, 2, 4, 8, 16], vec![1, 2, 4, 8, 16, 32, 64]);
    let mut table = Table::new(&["workers", "sz:abs runtime (s)", "zfp:accuracy runtime (s)"]);
    let mut records = Vec::new();
    let mut longest_field: f64 = 0.0;
    for &workers in &worker_counts {
        let mut row = vec![workers.to_string()];
        for backend in ["sz", "zfp"] {
            let search = SearchConfig {
                measure_final_quality: false,
                ..SearchConfig::new(10.0, 0.1).with_regions(6)
            };
            let orch = Orchestrator::new(
                backend,
                OrchestratorConfig {
                    total_workers: workers,
                    ..OrchestratorConfig::new(search)
                },
            )
            .unwrap();
            let outcome = orch.run_application(&fields);
            let seconds = outcome.elapsed.as_secs_f64();
            longest_field = longest_field.max(outcome.longest_field_time().as_secs_f64());
            row.push(format!("{seconds:.2}"));
            records.push(Record::new(
                "fig08",
                &format!("{backend}@{workers}"),
                json!({"backend": backend, "workers": workers, "runtime_seconds": seconds,
                       "longest_field_seconds": outcome.longest_field_time().as_secs_f64()}),
            ));
        }
        table.row(row);
    }
    table.print();
    append("fig08", &records);
    println!("\nlongest single-field time observed: {longest_field:.2} s — the scaling floor.");
    println!("Paper expectation: runtime drops steeply up to the point where every field runs");
    println!("concurrently, then flattens at the longest field's time; zfp:accuracy scales worse");
    println!(
        "than sz:abs because more of its targets are infeasible and exhaust the search budget."
    );
}
