//! Figure 1: ZFP fixed-accuracy vs fixed-rate mode.
//!
//! (b) rate distortion of the two modes on the Hurricane TCf field, and the
//! summary distortion statistics at a common ~50:1 compression ratio that
//! caption (a)/(c)/(d) report (PSNR, max error, SSIM, ACF(error)).
//!
//! Run with `cargo run --release -p fraz-bench --bin fig01_zfp_modes`.

use fraz_bench::records::{append, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_core::{FixedRatioSearch, SearchConfig};
use fraz_pressio::registry;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 1: ZFP fixed-accuracy vs fixed-rate (scale: {}) ==\n",
        scale.label()
    );
    let dataset = workloads::hurricane(scale).field("TCf", 0);
    println!("dataset: {dataset}\n");

    let accuracy = registry::build_default("zfp").unwrap();
    let fixed_rate = registry::build_default("zfp-rate").unwrap();

    // ---- (b) rate distortion: sweep bit rates. ----
    let mut table = Table::new(&["bit rate", "PSNR zfp(accuracy)", "PSNR zfp(fixed-rate)"]);
    let mut records = Vec::new();
    let rates: Vec<f64> = vec![0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0, 16.0];
    for &bits_per_value in &rates {
        // Fixed-rate mode: the rate is the parameter.
        let rate_outcome = fixed_rate.evaluate(&dataset, bits_per_value, true).unwrap();
        // Accuracy mode: find the tolerance whose ratio matches this rate,
        // i.e. ask FRaZ for the equivalent target ratio.
        let target_ratio = 32.0 / bits_per_value;
        let config = SearchConfig::new(target_ratio, 0.1)
            .with_regions(6)
            .with_threads(6);
        let acc_outcome =
            FixedRatioSearch::new(registry::build_default("zfp").unwrap(), config).run(&dataset);
        let acc_quality = acc_outcome.best.quality.clone().unwrap();
        let rate_quality = rate_outcome.quality.clone().unwrap();
        table.row(vec![
            format!("{bits_per_value:.1}"),
            format!(
                "{:.1} (@{:.1}:1)",
                acc_quality.psnr, acc_outcome.best.compression_ratio
            ),
            format!(
                "{:.1} (@{:.1}:1)",
                rate_quality.psnr, rate_outcome.compression_ratio
            ),
        ]);
        records.push(Record::new(
            "fig01",
            &format!("bitrate_{bits_per_value}"),
            json!({
                "bit_rate": bits_per_value,
                "accuracy_psnr": acc_quality.psnr,
                "accuracy_ratio": acc_outcome.best.compression_ratio,
                "fixed_rate_psnr": rate_quality.psnr,
                "fixed_rate_ratio": rate_outcome.compression_ratio,
            }),
        ));
    }
    table.print();
    let _ = accuracy;

    // ---- (a)/(c)/(d): distortion statistics at ~50:1. ----
    println!("\n-- distortion at a common ~50:1 ratio --");
    let config = SearchConfig::new(50.0, 0.15)
        .with_regions(6)
        .with_threads(6);
    let acc = FixedRatioSearch::new(registry::build_default("zfp").unwrap(), config).run(&dataset);
    let acc_q = acc.best.quality.clone().unwrap();
    let rate = fixed_rate
        .evaluate(&dataset, 32.0 / acc.best.compression_ratio, true)
        .unwrap();
    let rate_q = rate.quality.clone().unwrap();
    let mut summary = Table::new(&["mode", "ratio", "PSNR", "max error", "SSIM", "ACF(error)"]);
    for (mode, ratio, q) in [
        (
            "zfp fixed-accuracy (FRaZ)",
            acc.best.compression_ratio,
            &acc_q,
        ),
        ("zfp fixed-rate", rate.compression_ratio, &rate_q),
    ] {
        summary.row(vec![
            mode.to_string(),
            format!("{ratio:.1}"),
            format!("{:.1}", q.psnr),
            format!("{:.3e}", q.max_abs_error),
            format!("{:.4}", q.ssim),
            format!("{:.3}", q.acf_error),
        ]);
    }
    summary.print();
    records.push(Record::new(
        "fig01",
        "cr50_summary",
        json!({
            "accuracy": {"ratio": acc.best.compression_ratio, "psnr": acc_q.psnr,
                          "max_error": acc_q.max_abs_error, "ssim": acc_q.ssim, "acf": acc_q.acf_error},
            "fixed_rate": {"ratio": rate.compression_ratio, "psnr": rate_q.psnr,
                            "max_error": rate_q.max_abs_error, "ssim": rate_q.ssim, "acf": rate_q.acf_error},
        }),
    ));
    append("fig01", &records);
    println!("\nPaper expectation: the fixed-accuracy curve sits well above the fixed-rate curve");
    println!("(up to ~30 dB), and at 50:1 the accuracy mode has higher PSNR and lower max error.");
}
