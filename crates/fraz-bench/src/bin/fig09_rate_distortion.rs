//! Figure 9: rate-distortion of SZ(FRaZ), ZFP(FRaZ), ZFP(fixed-rate) and
//! MGARD(FRaZ) on all five applications.
//!
//! For a sweep of bit rates, each error-bounded compressor is tuned by FRaZ
//! to the corresponding compression ratio and the PSNR of the reconstruction
//! is reported; ZFP's fixed-rate mode is evaluated directly at the same
//! rate.  MGARD is skipped for the 1-D applications (HACC, EXAALT), as in
//! the paper.
//!
//! Run with `cargo run --release -p fraz-bench --bin fig09_rate_distortion`.

use fraz_bench::records::{append, Record};
use fraz_bench::scale::Scale;
use fraz_bench::table::Table;
use fraz_bench::workloads;
use fraz_core::{FixedRatioSearch, SearchConfig};
use fraz_pressio::registry;
use serde_json::json;

fn main() {
    let scale = Scale::from_env();
    println!(
        "== Figure 9: rate distortion across applications (scale: {}) ==\n",
        scale.label()
    );
    let bit_rates: Vec<f64> = scale.pick(
        vec![0.5, 1.0, 2.0, 4.0, 8.0],
        vec![0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0],
    );
    let mut records = Vec::new();

    for app in workloads::applications(scale) {
        let dataset = workloads::headline_dataset(&app);
        println!("-- {} ({}) --", app.application(), dataset.field);
        let mut table = Table::new(&[
            "bit rate",
            "SZ(FRaZ)",
            "ZFP(FRaZ)",
            "ZFP(fixed-rate)",
            "MGARD(FRaZ)",
        ]);
        for &bit_rate in &bit_rates {
            let target_ratio = 32.0 / bit_rate;
            let mut cells = vec![format!("{bit_rate:.1}")];
            for backend_name in ["sz", "zfp", "zfp-rate", "mgard"] {
                let backend = registry::build_default(backend_name).unwrap();
                if !backend.supports_dims(&dataset.dims) {
                    cells.push("-".into());
                    continue;
                }
                let (psnr, achieved_rate) = if backend_name == "zfp-rate" {
                    let outcome = backend.evaluate(&dataset, bit_rate, true).unwrap();
                    (outcome.quality.as_ref().unwrap().psnr, outcome.bit_rate)
                } else {
                    let config = SearchConfig::new(target_ratio, 0.15)
                        .with_regions(6)
                        .with_threads(6);
                    let outcome = FixedRatioSearch::new(backend, config).run(&dataset);
                    (
                        outcome.best.quality.as_ref().map(|q| q.psnr).unwrap_or(0.0),
                        outcome.best.bit_rate,
                    )
                };
                cells.push(format!("{psnr:.1}"));
                records.push(Record::new(
                    "fig09",
                    &format!("{}/{}/{}", app.application(), dataset.field, backend_name),
                    json!({"application": app.application(), "field": dataset.field,
                           "backend": backend_name, "requested_bit_rate": bit_rate,
                           "achieved_bit_rate": achieved_rate, "psnr": psnr}),
                ));
            }
            table.row(cells);
        }
        table.print();
        println!();
    }
    append("fig09", &records);
    println!("Paper expectation: SZ(FRaZ) gives the best PSNR at most rates, ZFP(FRaZ) is");
    println!("consistently above ZFP(fixed-rate), and MGARD rows are absent for the 1-D codes.");
}
