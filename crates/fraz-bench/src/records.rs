//! Machine-readable experiment records.
//!
//! Every experiment binary appends one JSON object per measured row to
//! `results/<experiment>.jsonl` (relative to the workspace root, or to
//! `FRAZ_BENCH_RESULTS` when set).  EXPERIMENTS.md quotes those numbers, and
//! reruns simply append — the `run_id` field distinguishes them.

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use serde::Serialize;
use serde_json::Value;

/// One experiment record: the experiment id, a free-form row label and a
/// JSON payload of measured values.
#[derive(Debug, Clone, Serialize)]
pub struct Record {
    /// Experiment identifier (e.g. `"fig09"`).
    pub experiment: String,
    /// Row label (e.g. `"hurricane/TCf/sz"`).
    pub label: String,
    /// Measured values.
    pub values: Value,
}

impl Record {
    /// Build a record from anything serializable.
    pub fn new(experiment: &str, label: &str, values: impl Serialize) -> Self {
        Self {
            experiment: experiment.to_string(),
            label: label.to_string(),
            values: serde_json::to_value(values).unwrap_or(Value::Null),
        }
    }
}

/// Where result files are written.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("FRAZ_BENCH_RESULTS") {
        return PathBuf::from(dir);
    }
    PathBuf::from("results")
}

/// Append records to `results/<experiment>.jsonl`.  I/O problems are
/// reported to stderr but never abort an experiment run.
pub fn append(experiment: &str, records: &[Record]) {
    let dir = results_dir();
    if let Err(e) = fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{experiment}.jsonl"));
    let file = fs::OpenOptions::new().create(true).append(true).open(&path);
    match file {
        Ok(mut f) => {
            for r in records {
                match serde_json::to_string(r) {
                    Ok(line) => {
                        if let Err(e) = writeln!(f, "{line}") {
                            eprintln!("warning: cannot write to {}: {e}", path.display());
                            return;
                        }
                    }
                    Err(e) => eprintln!("warning: cannot serialize record: {e}"),
                }
            }
            println!("[recorded {} rows to {}]", records.len(), path.display());
        }
        Err(e) => eprintln!("warning: cannot open {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_serializes_values() {
        #[derive(Serialize)]
        struct Row {
            ratio: f64,
            psnr: f64,
        }
        let r = Record::new(
            "fig09",
            "nyx/temperature/sz",
            Row {
                ratio: 85.0,
                psnr: 80.4,
            },
        );
        assert_eq!(r.experiment, "fig09");
        let json = serde_json::to_string(&r).unwrap();
        assert!(json.contains("85.0") || json.contains("85"));
        assert!(json.contains("psnr"));
    }

    #[test]
    fn append_writes_jsonl() {
        let dir = std::env::temp_dir().join(format!("fraz_bench_records_{}", std::process::id()));
        std::env::set_var("FRAZ_BENCH_RESULTS", &dir);
        append(
            "unit_test",
            &[
                Record::new("unit_test", "a", serde_json::json!({"x": 1})),
                Record::new("unit_test", "b", serde_json::json!({"x": 2})),
            ],
        );
        let content = std::fs::read_to_string(dir.join("unit_test.jsonl")).unwrap();
        assert_eq!(content.lines().count(), 2);
        std::env::remove_var("FRAZ_BENCH_RESULTS");
        std::fs::remove_dir_all(&dir).ok();
    }
}
