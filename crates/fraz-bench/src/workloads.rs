//! Bench-scale workloads standing in for the SDRBench archives.
//!
//! The grid sizes and time-step counts are scaled down from Table III so the
//! full experiment suite runs on a laptop; the `full` scale gets closer to
//! the paper's shapes.  Field structure, dimensionality and temporal
//! coherence follow the generators in [`fraz_data::synthetic`].

use fraz_data::synthetic::{self, SyntheticDataset};
use fraz_data::Dataset;
use fraz_data::{DType, Dims};
use fraz_scenarios::{all_scenarios, ScenarioField};

use crate::scale::Scale;
use crate::EXPERIMENT_SEED;

/// The five applications of Table III at bench scale.
pub fn applications(scale: Scale) -> Vec<SyntheticDataset> {
    vec![
        hurricane(scale),
        hacc(scale),
        cesm(scale),
        exaalt(scale),
        nyx(scale),
    ]
}

/// Hurricane-like meteorology (3-D, 48 time-steps in the paper).
pub fn hurricane(scale: Scale) -> SyntheticDataset {
    let (nz, ny, nx, steps) = scale.pick((16, 48, 48, 12), (24, 96, 96, 48));
    synthetic::hurricane(nz, ny, nx, steps, EXPERIMENT_SEED)
}

/// HACC-like cosmology particles (1-D, 101 time-steps in the paper).
pub fn hacc(scale: Scale) -> SyntheticDataset {
    let (particles, steps) = scale.pick((131_072, 8), (1_048_576, 24));
    synthetic::hacc(particles, steps, EXPERIMENT_SEED)
}

/// CESM-ATM-like climate output (2-D, 62 time-steps in the paper).
pub fn cesm(scale: Scale) -> SyntheticDataset {
    let (nlat, nlon, steps) = scale.pick((192, 288, 8), (384, 576, 24));
    synthetic::cesm(nlat, nlon, steps, EXPERIMENT_SEED)
}

/// EXAALT-like molecular dynamics (1-D, 82 time-steps in the paper).
pub fn exaalt(scale: Scale) -> SyntheticDataset {
    let (atoms, steps) = scale.pick((131_072, 8), (786_432, 24));
    synthetic::exaalt(atoms, steps, EXPERIMENT_SEED)
}

/// NYX-like cosmological hydrodynamics (3-D, 8 time-steps in the paper).
pub fn nyx(scale: Scale) -> SyntheticDataset {
    let (n, steps) = scale.pick((48, 4), (96, 8));
    synthetic::nyx(n, n, n, steps, EXPERIMENT_SEED)
}

/// Every synthetic scenario regime over the canonical ordering workloads
/// (1-D and 2-D, f32, the workspace experiment seed) — the exact fields the
/// `scenario_matrix` oracle test asserts compressibility ordering on, so
/// the `scenarios` bench baselines and the test suite measure one thing.
pub fn scenario_fields(scale: Scale) -> Vec<ScenarioField> {
    let (n1, side) = scale.pick((8192, 64), (1 << 20, 512));
    let shapes = [Dims::d1(n1), Dims::d2(side, side)];
    let mut fields = Vec::new();
    for config in all_scenarios(EXPERIMENT_SEED) {
        for dims in &shapes {
            fields.push(config.generate(dims, DType::F32, 0));
        }
    }
    fields
}

/// The "headline" field each figure uses for an application, mirroring the
/// fields named in the paper (TCf / QCLOUDf for Hurricane, temperature for
/// NYX, CLDHGH for CESM, x for the particle codes).
pub fn headline_field(application: &str) -> &'static str {
    match application {
        "hurricane" => "TCf",
        "cesm" => "CLDHGH",
        "nyx" => "temperature",
        "hacc" | "exaalt" => "x",
        _ => "TCf",
    }
}

/// Convenience: the headline field of an application at time-step 0.
pub fn headline_dataset(app: &SyntheticDataset) -> Dataset {
    app.field(headline_field(app.application()), 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_workloads_have_expected_shapes() {
        let apps = applications(Scale::Quick);
        assert_eq!(apps.len(), 5);
        let dims: Vec<usize> = apps.iter().map(|a| a.dims().ndims()).collect();
        assert_eq!(dims, vec![3, 1, 2, 1, 3]);
        for app in &apps {
            assert!(app.timesteps() >= 4);
            let d = headline_dataset(app);
            assert_eq!(d.len(), app.dims().len());
        }
    }

    #[test]
    fn full_scale_is_strictly_larger() {
        assert!(hurricane(Scale::Full).dims().len() > hurricane(Scale::Quick).dims().len());
        assert!(nyx(Scale::Full).timesteps() > nyx(Scale::Quick).timesteps());
    }

    #[test]
    fn headline_fields_exist() {
        for app in applications(Scale::Quick) {
            let field = headline_field(app.application());
            assert!(
                app.field_names().iter().any(|f| f == field),
                "{} lacks {}",
                app.application(),
                field
            );
        }
    }
}
