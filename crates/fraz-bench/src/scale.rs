//! Experiment scale selection.
//!
//! The paper's runs use multi-gigabyte archives and hundreds of cores; the
//! reproduction defaults to a *quick* profile that preserves every
//! qualitative behaviour at laptop scale and finishes in minutes.  Set
//! `FRAZ_BENCH_SCALE=full` for larger grids, more time-steps and wider
//! sweeps.

/// The selected experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small grids, few time-steps; minutes of runtime (default).
    Quick,
    /// Larger grids and longer series, closer to the paper's configuration.
    Full,
}

impl Scale {
    /// Read the scale from the `FRAZ_BENCH_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("FRAZ_BENCH_SCALE").as_deref() {
            Ok("full") | Ok("FULL") | Ok("paper") => Scale::Full,
            _ => Scale::Quick,
        }
    }

    /// Pick `quick` or `full` depending on the scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Human-readable label for experiment logs.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert_eq!(Scale::Quick.label(), "quick");
        assert_eq!(Scale::Full.label(), "full");
    }

    #[test]
    fn env_parsing_defaults_to_quick() {
        // The variable is unlikely to be set in the test environment; the
        // important property is that anything unrecognized maps to Quick.
        let scale = Scale::from_env();
        assert!(scale == Scale::Quick || scale == Scale::Full);
    }
}
