//! Experiment scale selection.
//!
//! The paper's runs use multi-gigabyte archives and hundreds of cores; the
//! reproduction defaults to a *quick* profile that preserves every
//! qualitative behaviour at laptop scale and finishes in minutes.  Set
//! `FRAZ_BENCH_SCALE=full` for larger grids, more time-steps and wider
//! sweeps.

/// The selected experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small grids, few time-steps; minutes of runtime (default).
    Quick,
    /// Larger grids and longer series, closer to the paper's configuration.
    Full,
}

impl Scale {
    /// Read the scale from the `FRAZ_BENCH_SCALE` environment variable.
    pub fn from_env() -> Self {
        Self::parse(std::env::var("FRAZ_BENCH_SCALE").ok().as_deref())
    }

    /// Parse a raw `FRAZ_BENCH_SCALE` value: `"full"` / `"paper"` (any
    /// case) select [`Scale::Full`]; anything else — including an unset
    /// variable — falls back to [`Scale::Quick`].  Split out of
    /// [`Scale::from_env`] so the mapping is testable without mutating
    /// process-global environment state.
    pub fn parse(value: Option<&str>) -> Self {
        match value {
            Some(v) if v.eq_ignore_ascii_case("full") || v.eq_ignore_ascii_case("paper") => {
                Scale::Full
            }
            _ => Scale::Quick,
        }
    }

    /// Pick `quick` or `full` depending on the scale.
    pub fn pick<T>(self, quick: T, full: T) -> T {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }

    /// Human-readable label for experiment logs.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pick_selects_by_scale() {
        assert_eq!(Scale::Quick.pick(1, 2), 1);
        assert_eq!(Scale::Full.pick(1, 2), 2);
        assert_eq!(Scale::Quick.label(), "quick");
        assert_eq!(Scale::Full.label(), "full");
    }

    #[test]
    fn parse_recognizes_full_scale_spellings() {
        assert_eq!(Scale::parse(Some("full")), Scale::Full);
        assert_eq!(Scale::parse(Some("FULL")), Scale::Full);
        assert_eq!(Scale::parse(Some("Full")), Scale::Full);
        assert_eq!(Scale::parse(Some("paper")), Scale::Full);
        assert_eq!(Scale::parse(Some("PAPER")), Scale::Full);
    }

    #[test]
    fn parse_defaults_everything_else_to_quick() {
        assert_eq!(Scale::parse(None), Scale::Quick);
        assert_eq!(Scale::parse(Some("")), Scale::Quick);
        assert_eq!(Scale::parse(Some("quick")), Scale::Quick);
        assert_eq!(Scale::parse(Some("garbage")), Scale::Quick);
        assert_eq!(Scale::parse(Some("ful")), Scale::Quick);
        assert_eq!(Scale::parse(Some(" full ")), Scale::Quick, "no trimming");
    }
}
