//! Shared harness for the experiment reproductions.
//!
//! Every table and figure of the FRaZ paper's evaluation section has a
//! corresponding binary in `src/bin/` (see DESIGN.md §4 for the index).  The
//! binaries share this small library:
//!
//! * [`workloads`] — the bench-scale synthetic datasets standing in for the
//!   SDRBench archives (see DESIGN.md §2 for the substitution rationale),
//! * [`records`] — machine-readable result rows appended to
//!   `results/*.jsonl` so EXPERIMENTS.md can quote exact numbers,
//! * [`table`] — fixed-width console table printing,
//! * [`scale`] — the `FRAZ_BENCH_SCALE` switch between a quick profile
//!   (minutes, default) and a fuller profile closer to the paper's sizes.

pub mod records;
pub mod scale;
pub mod table;
pub mod workloads;

/// Default random seed used by every experiment, so reruns are identical.
pub const EXPERIMENT_SEED: u64 = 20200118;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_is_stable() {
        // The seed is part of the experiment definition; changing it would
        // silently change every recorded number.
        assert_eq!(EXPERIMENT_SEED, 20200118);
    }
}
