//! Property tests pinning the scenario oracle away from the stock knobs:
//! for arbitrary dims/seeds/slopes/shock counts, generation is
//! seed-deterministic (same seed → bit-identical field) and every
//! [`ScenarioDescriptor`] ground-truth statistic matches the emitted data
//! *exactly* — the oracle test matrix is only as trustworthy as these
//! invariants.
#![recursion_limit = "256"]

use proptest::prelude::*;

use fraz_data::{DType, Dims};
use fraz_scenarios::{Regime, ScenarioConfig, REGIMES};

fn regime_strategy() -> impl Strategy<Value = Regime> {
    (0usize..REGIMES.len()).prop_map(|i| REGIMES[i])
}

fn dims_strategy() -> impl Strategy<Value = Dims> {
    prop_oneof![
        (64usize..2048).prop_map(Dims::d1),
        ((8usize..48), (8usize..48)).prop_map(|(r, c)| Dims::d2(r, c)),
        ((4usize..14), (4usize..14), (4usize..14)).prop_map(|(z, y, x)| Dims::d3(z, y, x)),
    ]
}

fn dtype_strategy() -> impl Strategy<Value = DType> {
    prop_oneof![Just(DType::F32), Just(DType::F64)]
}

proptest! {
    // Each case generates up to three fields over every assertion below,
    // so a modest case count still covers a wide knob space.
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn same_seed_is_bit_identical_and_descriptors_are_exact(
        regime in regime_strategy(),
        dims in dims_strategy(),
        dtype in dtype_strategy(),
        seed in 0u64..1_000_000,
        // (spectral slope, shock count, blob count) — grouped so the
        // parameter list stays within the tuple-strategy arity.
        knobs in (0.5f64..3.0, 1usize..6, 0usize..8),
        timestep in 0usize..4,
    ) {
        let (slope, shock_count, blob_count) = knobs;
        let mut config = ScenarioConfig::new(regime).with_seed(seed);
        config.spectral_slope = slope;
        config.shock_count = shock_count;
        config.blob_count = blob_count;

        let a = config.generate(&dims, dtype, timestep);
        let b = config.generate(&dims, dtype, timestep);
        prop_assert_eq!(&a, &b, "same config must be bit-identical");

        let values = a.dataset.values_f64();
        prop_assert_eq!(values.len(), dims.len());
        prop_assert!(values.iter().all(|v| v.is_finite()), "NaN/inf leaked");

        // Ground truth is measured from the *stored* values: recomputing
        // with the documented left-to-right f64 summation must agree to
        // the bit, for both dtypes.
        let d = &a.descriptor;
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let rms = (values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt();
        prop_assert_eq!(d.min, min);
        prop_assert_eq!(d.max, max);
        prop_assert_eq!(d.mean, mean);
        prop_assert_eq!(d.rms, rms);
        prop_assert_eq!(d.regime, regime);
        prop_assert_eq!(d.seed, seed);
        prop_assert_eq!(d.timestep, timestep);
        prop_assert_eq!(&d.dims, &dims);
        prop_assert_eq!(d.dtype, dtype);
        prop_assert_eq!(d.compress_rank, regime.compress_rank());

        // A different seed must actually change the bits.
        let reseeded = config.clone().with_seed(seed ^ 0x9e37_79b9).generate(&dims, dtype, timestep);
        prop_assert!(
            a.dataset.buffer != reseeded.dataset.buffer,
            "a different seed must change the bits"
        );
    }

    #[test]
    fn regime_specific_ground_truth_holds_off_the_defaults(
        dims in dims_strategy(),
        seed in 0u64..1_000_000,
        slope in 0.5f64..3.0,
        shock_count in 1usize..6,
        blob_count in 0usize..8,
    ) {
        // Turbulence reports exactly the slope it was asked for.
        let mut turb = ScenarioConfig::new(Regime::Turbulence).with_seed(seed);
        turb.spectral_slope = slope;
        let field = turb.generate(&dims, DType::F64, 0);
        prop_assert_eq!(field.descriptor.spectral_slope, Some(slope));

        // Shock reports one sorted in-range front per requested shock.
        let mut shock = ScenarioConfig::new(Regime::Shock).with_seed(seed);
        shock.shock_count = shock_count;
        let field = shock.generate(&dims, DType::F64, 0);
        let fronts = field.descriptor.shock_fronts.clone().unwrap();
        prop_assert_eq!(fronts.len(), shock_count);
        prop_assert!(fronts.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(fronts.iter().all(|p| (0.0..1.0).contains(p)));

        // Sparse's constant fraction counts the exact background matches in
        // the emitted f64 data; zero blobs means an all-constant field.
        let mut sparse = ScenarioConfig::new(Regime::Sparse).with_seed(seed);
        sparse.blob_count = blob_count;
        let field = sparse.generate(&dims, DType::F64, 0);
        let d = &field.descriptor;
        let background = d.background.unwrap();
        let matches = field
            .dataset
            .values_f64()
            .iter()
            .filter(|&&v| v == background)
            .count();
        prop_assert_eq!(
            d.constant_fraction.unwrap(),
            matches as f64 / dims.len() as f64
        );
        if blob_count == 0 {
            prop_assert_eq!(d.constant_fraction, Some(1.0));
            prop_assert_eq!(d.min, d.max);
        }
    }

    #[test]
    fn wave_regimes_peak_exactly_at_the_amplitude(
        dims in dims_strategy(),
        seed in 0u64..1_000_000,
        amp_exp in -2i32..3,
    ) {
        let amplitude = 10f64.powi(amp_exp);
        for regime in [Regime::Smooth, Regime::Turbulence, Regime::Oscillatory] {
            let mut config = ScenarioConfig::new(regime).with_seed(seed);
            config.amplitude = amplitude;
            let d = config.generate(&dims, DType::F64, 0).descriptor;
            let peak = d.max.abs().max(d.min.abs());
            prop_assert_eq!(peak, amplitude, "{} peak", regime);
        }
        // Noise stays strictly inside the open interval.
        let mut config = ScenarioConfig::new(Regime::Noise).with_seed(seed);
        config.amplitude = amplitude;
        let d = config.generate(&dims, DType::F64, 0).descriptor;
        prop_assert!(d.max < amplitude && d.min > -amplitude);
    }
}
