//! The six regime generators.
//!
//! Everything here is pure `ChaCha8Rng` + IEEE-754 arithmetic over
//! normalized `[0,1)^d` coordinates, so a `(regime, seed, knobs, dims,
//! timestep)` tuple always reproduces the same bits.  Values are produced
//! in `f64`; the caller narrows to the requested dtype and measures the
//! descriptor statistics from what was actually stored.

use std::f64::consts::TAU;

use fraz_data::synthetic::field_gen::{normal, rng_for};
use fraz_data::Dims;
use rand::Rng;

use crate::{GroundTruth, Regime, ScenarioConfig};

pub(crate) struct RawField {
    pub values: Vec<f64>,
    pub ground_truth: GroundTruth,
}

pub(crate) fn generate(config: &ScenarioConfig, dims: &Dims, timestep: usize) -> RawField {
    match config.regime {
        Regime::Smooth => smooth(config, dims, timestep),
        Regime::Turbulence => turbulence(config, dims, timestep),
        Regime::Oscillatory => oscillatory(config, dims, timestep),
        Regime::Shock => shock(config, dims, timestep),
        Regime::Sparse => sparse(config, dims, timestep),
        Regime::Noise => noise(config, dims, timestep),
    }
}

/// Normalized per-axis coordinates of a flat row-major index.  Slot 0 is
/// the fastest (last) axis, slot `ndims - 1` the slowest (first); unused
/// slots stay 0.
#[inline]
fn coords(shape: &[usize], mut idx: usize, out: &mut [f64; 4]) {
    for (slot, &len) in shape.iter().rev().enumerate() {
        out[slot] = (idx % len) as f64 / len as f64;
        idx /= len;
    }
}

/// Rescale so the largest |value| equals `amplitude` *exactly*: the peak
/// element maps through `±m / m * amplitude = ±amplitude`, and correctly
/// rounded division keeps every other |value| ≤ amplitude.
fn normalize_peak(values: &mut [f64], amplitude: f64) {
    let m = values.iter().fold(0.0f64, |acc, v| acc.max(v.abs()));
    if m == 0.0 {
        return;
    }
    for v in values.iter_mut() {
        *v = *v / m * amplitude;
    }
}

/// A travelling sinusoidal mode over normalized coordinates.
struct Mode {
    k: [f64; 4],
    amp: f64,
    phase: f64,
    omega: f64,
}

impl Mode {
    #[inline]
    fn eval(&self, c: &[f64; 4], t: f64) -> f64 {
        let arg = self.k[0] * c[0]
            + self.k[1] * c[1]
            + self.k[2] * c[2]
            + self.k[3] * c[3]
            + self.phase
            + self.omega * t;
        self.amp * arg.sin()
    }
}

/// Smooth advection: four low-wavenumber (≤ 1.5 cycles/axis) travelling
/// cosines plus two wide drifting Gaussian bumps.  Peak-normalized.
fn smooth(config: &ScenarioConfig, dims: &Dims, timestep: usize) -> RawField {
    let mut rng = rng_for(config.seed, "scenario/smooth");
    let t = timestep as f64;
    let shape = dims.as_slice();

    let modes: Vec<Mode> = (0..4)
        .map(|m| {
            let mut k = [0.0; 4];
            for slot in k.iter_mut() {
                *slot = rng.gen_range(-1.5..1.5) * TAU;
            }
            Mode {
                k,
                amp: 1.0 / (1.0 + m as f64),
                phase: rng.gen_range(0.0..TAU),
                omega: normal(&mut rng) * 0.2,
            }
        })
        .collect();

    struct Bump {
        center: [f64; 4],
        vel: [f64; 4],
        width: f64,
        height: f64,
    }
    let bumps: Vec<Bump> = (0..2)
        .map(|_| {
            let mut center = [0.0; 4];
            let mut vel = [0.0; 4];
            for (c, v) in center.iter_mut().zip(vel.iter_mut()) {
                *c = rng.gen_range(0.0..1.0);
                *v = rng.gen_range(-0.03..0.03);
            }
            Bump {
                center,
                vel,
                width: rng.gen_range(0.22..0.40),
                height: if rng.gen_bool(0.5) { 0.9 } else { -0.9 },
            }
        })
        .collect();

    let ndims = shape.len();
    let mut values = Vec::with_capacity(dims.len());
    let mut c = [0.0f64; 4];
    for idx in 0..dims.len() {
        coords(shape, idx, &mut c);
        let mut v = 0.0;
        for mode in &modes {
            v += mode.eval(&c, t);
        }
        for bump in &bumps {
            let mut d2 = 0.0;
            for a in 0..ndims {
                let center = (bump.center[a] + bump.vel[a] * t).rem_euclid(1.0);
                let dx = (c[a] - center).abs();
                let dx = dx.min(1.0 - dx);
                d2 += dx * dx;
            }
            v += bump.height * (-d2 / (2.0 * bump.width * bump.width)).exp();
        }
        values.push(v);
    }
    normalize_peak(&mut values, config.amplitude);
    RawField {
        values,
        ground_truth: GroundTruth::default(),
    }
}

/// Kolmogorov-like turbulence: `modes` random Fourier modes with
/// log-uniform wavenumber magnitude in `[4, 64]` and amplitude
/// `(k/4)^{-slope}`, so energy concentrates at the largest resolved
/// scales for slope > 0 but broadband structure persists everywhere.  The
/// wavenumber floor keeps the regime strictly rougher than the smooth one
/// (≤ 1.5 cycles), which the compressibility chain depends on.
/// Peak-normalized.
fn turbulence(config: &ScenarioConfig, dims: &Dims, timestep: usize) -> RawField {
    let mut rng = rng_for(config.seed, "scenario/turbulence");
    let t = timestep as f64;
    let shape = dims.as_slice();
    let ndims = shape.len();
    let min_wavenumber: f64 = 4.0;
    let max_wavenumber: f64 = 64.0;

    let modes: Vec<Mode> = (0..config.modes.max(1))
        .map(|_| {
            let u = rng.gen_range(0.0f64..1.0);
            let kmag = min_wavenumber * (u * (max_wavenumber / min_wavenumber).ln()).exp();
            let mut dir = [0.0f64; 4];
            let mut norm = 0.0;
            for slot in dir.iter_mut().take(ndims) {
                *slot = normal(&mut rng);
                norm += *slot * *slot;
            }
            let norm = norm.sqrt().max(1e-9);
            let mut k = [0.0; 4];
            for a in 0..ndims {
                k[a] = dir[a] / norm * kmag * TAU;
            }
            Mode {
                k,
                amp: (kmag / min_wavenumber).powf(-config.spectral_slope)
                    * (0.5 + rng.gen_range(0.0..1.0)),
                phase: rng.gen_range(0.0..TAU),
                omega: normal(&mut rng) * 0.1,
            }
        })
        .collect();

    let mut values = Vec::with_capacity(dims.len());
    let mut c = [0.0f64; 4];
    for idx in 0..dims.len() {
        coords(shape, idx, &mut c);
        let mut v = 0.0;
        for mode in &modes {
            v += mode.eval(&c, t);
        }
        values.push(v);
    }
    normalize_peak(&mut values, config.amplitude);
    RawField {
        values,
        ground_truth: GroundTruth {
            spectral_slope: Some(config.spectral_slope),
            ..GroundTruth::default()
        },
    }
}

/// Multi-channel telemetry: the flat buffer is split into `channels`
/// contiguous channel slices with log-spaced amplitudes (3 decades),
/// distinct carrier frequencies, and a slow baseline wander.
/// Peak-normalized.
fn oscillatory(config: &ScenarioConfig, dims: &Dims, timestep: usize) -> RawField {
    assert!(
        config.channels > 0,
        "oscillatory scenario needs channels > 0"
    );
    let mut rng = rng_for(config.seed, "scenario/oscillatory");
    let t = timestep as f64;
    let n = dims.len();
    let channels = config.channels.min(n).max(1);
    let denom = (channels - 1).max(1) as f64;

    let mut values = vec![0.0f64; n];
    let base = n / channels;
    let rem = n % channels;
    let mut start = 0;
    for ch in 0..channels {
        let len = base + usize::from(ch < rem);
        let amp = 10f64.powf(-3.0 * ch as f64 / denom);
        let freq: f64 = rng.gen_range(16.0..48.0);
        let phase: f64 = rng.gen_range(0.0..TAU);
        let omega: f64 = rng.gen_range(0.05..0.25);
        let drift_freq: f64 = rng.gen_range(0.5..2.0);
        let drift_phase: f64 = rng.gen_range(0.0..TAU);
        for (i, v) in values[start..start + len].iter_mut().enumerate() {
            let x = i as f64 / len as f64;
            let carrier = (TAU * freq * x + phase + omega * t).sin();
            let baseline = 0.15 * (TAU * drift_freq * x + drift_phase + 0.1 * t).sin();
            *v = amp * (carrier + baseline);
        }
        start += len;
    }
    normalize_peak(&mut values, config.amplitude);
    RawField {
        values,
        ground_truth: GroundTruth::default(),
    }
}

/// Shock fronts: a gentle smooth base (≤ 0.4·amplitude) plus
/// `shock_count` alternating-sign step jumps across planar fronts normal
/// to the slowest axis, at known drifting positions.  Not normalized —
/// the jump magnitudes are the ground truth.
fn shock(config: &ScenarioConfig, dims: &Dims, timestep: usize) -> RawField {
    let mut rng = rng_for(config.seed, "scenario/shock");
    let t = timestep as f64;
    let shape = dims.as_slice();

    let modes: Vec<Mode> = (0..3)
        .map(|_| {
            let mut k = [0.0; 4];
            for slot in k.iter_mut() {
                *slot = rng.gen_range(-2.0..2.0) * TAU;
            }
            Mode {
                k,
                amp: 0.4 * config.amplitude / 3.0,
                phase: rng.gen_range(0.0..TAU),
                omega: normal(&mut rng) * 0.2,
            }
        })
        .collect();

    struct Front {
        position: f64,
        jump: f64,
    }
    let mut fronts: Vec<Front> = (0..config.shock_count)
        .map(|i| {
            let p0: f64 = rng.gen_range(0.05..0.95);
            let vel: f64 = rng.gen_range(-0.02..0.02);
            let magnitude = config.amplitude * rng.gen_range(0.4..0.7);
            Front {
                position: (p0 + vel * t).rem_euclid(1.0),
                jump: if i % 2 == 0 { magnitude } else { -magnitude },
            }
        })
        .collect();
    fronts.sort_by(|a, b| a.position.total_cmp(&b.position));

    let slow_slot = shape.len() - 1;
    let mut values = Vec::with_capacity(dims.len());
    let mut c = [0.0f64; 4];
    for idx in 0..dims.len() {
        coords(shape, idx, &mut c);
        let mut v = 0.0;
        for mode in &modes {
            v += mode.eval(&c, t);
        }
        let u = c[slow_slot];
        for front in &fronts {
            if u >= front.position {
                v += front.jump;
            }
        }
        values.push(v);
    }
    RawField {
        values,
        ground_truth: GroundTruth {
            shock_fronts: Some(fronts.iter().map(|f| f.position).collect()),
            ..GroundTruth::default()
        },
    }
}

/// Sparse field: an exactly-constant background with `blob_count` drifting
/// compact-support bumps `h·(1 − u²)²` for `u < 1` (exactly zero outside),
/// so the background fraction is countable during generation.
/// `blob_count == 0` degenerates to an all-constant field.
fn sparse(config: &ScenarioConfig, dims: &Dims, timestep: usize) -> RawField {
    let mut rng = rng_for(config.seed, "scenario/sparse");
    let t = timestep as f64;
    let shape = dims.as_slice();
    let ndims = shape.len();

    struct Blob {
        center: [f64; 4],
        vel: [f64; 4],
        radius: f64,
        height: f64,
    }
    let blobs: Vec<Blob> = (0..config.blob_count)
        .map(|_| {
            let mut center = [0.0; 4];
            let mut vel = [0.0; 4];
            for (c, v) in center.iter_mut().zip(vel.iter_mut()) {
                *c = rng.gen_range(0.0..1.0);
                *v = rng.gen_range(-0.02..0.02);
            }
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            Blob {
                center,
                vel,
                radius: rng.gen_range(0.08..0.22),
                height: sign * config.amplitude * rng.gen_range(0.4..1.0),
            }
        })
        .collect();

    let mut values = Vec::with_capacity(dims.len());
    let mut background_count = 0usize;
    let mut c = [0.0f64; 4];
    for idx in 0..dims.len() {
        coords(shape, idx, &mut c);
        let mut s = 0.0;
        for blob in &blobs {
            let mut u2 = 0.0;
            for a in 0..ndims {
                let center = (blob.center[a] + blob.vel[a] * t).rem_euclid(1.0);
                let dx = (c[a] - center).abs();
                let dx = dx.min(1.0 - dx) / blob.radius;
                u2 += dx * dx;
                if u2 >= 1.0 {
                    break;
                }
            }
            if u2 < 1.0 {
                let w = 1.0 - u2;
                s += blob.height * w * w;
            }
        }
        if s == 0.0 {
            background_count += 1;
            values.push(config.background);
        } else {
            values.push(config.background + s);
        }
    }
    RawField {
        values,
        ground_truth: GroundTruth {
            constant_fraction: Some(background_count as f64 / dims.len() as f64),
            background: Some(config.background),
            ..GroundTruth::default()
        },
    }
}

/// Pure noise: i.i.d. uniform in `(-amplitude, amplitude)`, resampled per
/// time-step (noise has no temporal coherence to model).
fn noise(config: &ScenarioConfig, dims: &Dims, timestep: usize) -> RawField {
    let label = format!("scenario/noise/t{timestep}");
    let mut rng = rng_for(config.seed, &label);
    let values = (0..dims.len())
        .map(|_| rng.gen_range(-config.amplitude..config.amplitude))
        .collect();
    RawField {
        values,
        ground_truth: GroundTruth::default(),
    }
}
