//! Zero-file manifests: the [`fraz_data::manifest::FieldSynthesizer`]
//! implementation that lets a manifest field say `generator = "turbulence"`
//! instead of naming files.  The `fraz` CLI passes [`ScenarioSynthesizer`]
//! to [`fraz_data::manifest::Manifest::resolve_with`], so `fraz run`,
//! `fraz validate`, and `fraz store create` all work over purely synthetic
//! workloads.

use fraz_data::manifest::{FieldSpec, FieldSynthesizer};
use fraz_data::{Dataset, Dims};

use crate::{by_name, names, DEFAULT_SEED};

/// Resolves `generator = "<regime>"` manifest fields through the scenario
/// registry, honouring the spec's `dtype`/`dims`/`seed`/`steps` and naming
/// the emitted datasets after the manifest's application and field.
pub struct ScenarioSynthesizer;

impl FieldSynthesizer for ScenarioSynthesizer {
    fn synthesize(&self, application: &str, spec: &FieldSpec) -> Result<Vec<Dataset>, String> {
        let name = spec.generator.as_deref().unwrap_or_default();
        let Some(config) = by_name(name) else {
            let mut message = format!("unknown generator `{name}` (known: {})", names().join(", "));
            if let Some(close) = suggest(name) {
                message.push_str(&format!(" — did you mean `{close}`?"));
            }
            return Err(message);
        };
        let config = config.with_seed(spec.seed.unwrap_or(DEFAULT_SEED));
        let dims = Dims::new(&spec.dims);
        let steps = spec.steps.unwrap_or(1);
        Ok((0..steps)
            .map(|t| {
                let mut dataset = config.generate(&dims, spec.dtype, t).dataset;
                dataset.application = application.to_string();
                dataset.field = spec.name.clone();
                dataset
            })
            .collect())
    }
}

/// The closest registered regime name within edit distance 2, for
/// did-you-mean errors (`turbulance` → `turbulence`).
pub fn suggest(name: &str) -> Option<&'static str> {
    names()
        .into_iter()
        .map(|known| (edit_distance(name, known), known))
        .filter(|&(d, _)| d <= 2)
        .min_by_key(|&(d, _)| d)
        .map(|(_, known)| known)
}

/// Levenshtein distance over bytes (regime names are ASCII).
fn edit_distance(a: &str, b: &str) -> usize {
    let (a, b) = (a.as_bytes(), b.as_bytes());
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    for (i, &ca) in a.iter().enumerate() {
        let mut row = vec![i + 1];
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            row.push(sub.min(prev[j + 1] + 1).min(row[j] + 1));
        }
        prev = row;
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::manifest::Manifest;
    use std::path::Path;

    fn manifest(fields: &str) -> Manifest {
        Manifest::from_json_str(&format!(
            r#"{{"application": "synthetic", "target_ratio": 8.0, "fields": [{fields}]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn generator_fields_synthesize_named_series() {
        let m = manifest(
            r#"{"name": "vel", "dtype": "f32", "dims": [16, 16],
                "generator": "smooth", "seed": 11, "steps": 3}"#,
        );
        let resolved = m
            .resolve_with(Path::new("."), Some(&ScenarioSynthesizer))
            .unwrap();
        let field = &resolved.fields[0];
        assert_eq!(field.series.len(), 3);
        assert!(field.paths.is_empty());
        for (t, dataset) in field.series.iter().enumerate() {
            assert_eq!(dataset.application, "synthetic");
            assert_eq!(dataset.field, "vel");
            assert_eq!(dataset.timestep, t);
            assert_eq!(dataset.dims, Dims::d2(16, 16));
        }
        // Deterministic: resolving again yields the same bits.
        let again = m
            .resolve_with(Path::new("."), Some(&ScenarioSynthesizer))
            .unwrap();
        assert_eq!(resolved.fields[0].series, again.fields[0].series);
    }

    #[test]
    fn unknown_generator_gets_a_did_you_mean() {
        let m =
            manifest(r#"{"name": "g", "dtype": "f64", "dims": [64], "generator": "turbulance"}"#);
        let err = m
            .resolve_with(Path::new("."), Some(&ScenarioSynthesizer))
            .unwrap_err()
            .to_string();
        assert!(err.contains("field `g`"), "{err}");
        assert!(err.contains("unknown generator `turbulance`"), "{err}");
        assert!(err.contains("did you mean `turbulence`?"), "{err}");
    }

    #[test]
    fn suggestions_stay_close() {
        assert_eq!(suggest("noize"), Some("noise"));
        assert_eq!(suggest("shok"), Some("shock"));
        assert_eq!(suggest("completely-different"), None);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
    }
}
