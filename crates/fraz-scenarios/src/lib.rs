//! Synthetic workloads with *known* ground truth — the oracle side of the
//! FRaZ test matrix.
//!
//! The error-bounded-compression literature (Di et al.'s 2024 survey; the
//! SZx design study) identifies a handful of field classes that stress
//! different codec paths: smooth advective fields (prediction and transforms
//! shine), broadband turbulence (partial predictability), oscillatory
//! telemetry (narrowband, phase-sensitive), shock fronts (discontinuities
//! break smooth predictors), sparse fields with exactly-constant regions
//! (constant-block classification), and pure noise (nothing to exploit —
//! the incompressible floor).  This crate generates all six *regimes*
//! deterministically, in 1-D to 4-D and both `f32`/`f64`, and hands back a
//! [`ScenarioDescriptor`] whose ground truth (exact value range, mean, RMS,
//! spectral slope, discontinuity positions, constant fraction, and a
//! predicted cross-regime compressibility ordering) is what the
//! registry-driven oracle suite (`tests/scenario_matrix.rs` at the
//! workspace root) asserts against for **every** error-bounded codec.
//!
//! Determinism is a hard contract: the same [`ScenarioConfig`] (regime,
//! seed, knobs) over the same dims/dtype/time-step yields a bit-identical
//! field on every run and platform — scenarios are reproducible workloads,
//! not random test data.  Generation is pure ChaCha8 + IEEE-754 arithmetic;
//! nothing reads clocks or global state.
//!
//! ```
//! use fraz_data::{DType, Dims};
//! use fraz_scenarios::{by_name, Regime};
//!
//! let field = by_name("turbulence").unwrap().generate(&Dims::d2(32, 32), DType::F32, 0);
//! assert_eq!(field.descriptor.regime, Regime::Turbulence);
//! assert_eq!(field.descriptor.spectral_slope, Some(5.0 / 3.0));
//! // The descriptor's range is exact over the emitted values.
//! let values = field.dataset.values_f64();
//! let max = values.iter().cloned().fold(f64::MIN, f64::max);
//! assert_eq!(max, field.descriptor.max);
//! ```

mod gen;
pub mod manifest;

use std::fmt;

use fraz_data::{DType, Dataset, Dims};

pub use manifest::ScenarioSynthesizer;

/// Default seed for scenario generation (the workspace experiment seed, so
/// bench workloads and manifests agree by default).
pub const DEFAULT_SEED: u64 = 20200118;

/// The six field classes the suite covers.
///
/// The discriminants are ordered by the *universal compressibility chain*
/// (see [`Regime::compress_rank`]): at an equal absolute error bound, a
/// regime with a strictly smaller rank must achieve a strictly greater
/// compression ratio under every error-bounded codec.  Only the regimes
/// whose ordering is codec-independent carry a rank — oscillatory, shock
/// and sparse behave too differently across codec families for a universal
/// claim beyond "more compressible than noise".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Regime {
    /// Smooth advection: a few low-wavenumber cosine modes plus drifting
    /// Gaussian bumps.  The most compressible non-degenerate class.
    Smooth,
    /// Kolmogorov-spectrum turbulence: broadband spectral synthesis with a
    /// tunable amplitude-decay slope (default 5/3).
    Turbulence,
    /// Multi-channel oscillatory telemetry: contiguous channels, log-spaced
    /// amplitudes, distinct carrier frequencies and drifting baselines.
    Oscillatory,
    /// Shock/discontinuity fronts: a smooth base field plus step jumps
    /// across planar fronts at known positions along the slowest axis.
    Shock,
    /// Sparse-with-constant-regions: an exactly-constant background with a
    /// few compactly supported blobs (blob count 0 = all-constant field).
    Sparse,
    /// Pure i.i.d. uniform noise — the incompressible floor.
    Noise,
}

/// All six regimes, in chain order.
pub const REGIMES: [Regime; 6] = [
    Regime::Smooth,
    Regime::Turbulence,
    Regime::Oscillatory,
    Regime::Shock,
    Regime::Sparse,
    Regime::Noise,
];

impl Regime {
    /// The regime's manifest/registry name.
    pub fn name(self) -> &'static str {
        match self {
            Regime::Smooth => "smooth",
            Regime::Turbulence => "turbulence",
            Regime::Oscillatory => "oscillatory",
            Regime::Shock => "shock",
            Regime::Sparse => "sparse",
            Regime::Noise => "noise",
        }
    }

    /// Parse a registry name (exact, case-sensitive — manifest values are
    /// machine-written).
    pub fn parse(name: &str) -> Option<Self> {
        REGIMES.iter().copied().find(|r| r.name() == name)
    }

    /// Position in the universal compressibility chain, when the regime has
    /// one: `smooth(0) ≻ turbulence(1) ≻ noise(2)`, where `a ≻ b` promises a
    /// strictly greater ratio for `a` at an equal absolute bound under
    /// *every* error-bounded codec.  `None` for the regimes (oscillatory,
    /// shock, sparse) whose ordering against the chain is codec-specific;
    /// those still beat noise, which the oracle suite asserts separately.
    pub fn compress_rank(self) -> Option<u8> {
        match self {
            Regime::Smooth => Some(0),
            Regime::Turbulence => Some(1),
            Regime::Noise => Some(2),
            Regime::Oscillatory | Regime::Shock | Regime::Sparse => None,
        }
    }
}

impl fmt::Display for Regime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A parameterized, seed-deterministic scenario.
///
/// Every knob has a default chosen so the six stock scenarios (see
/// [`by_name`] / [`all_scenarios`]) honour the descriptor's ordering
/// promises; the proptest oracle suite additionally sweeps the knobs to pin
/// determinism and ground-truth exactness away from the defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioConfig {
    /// Which field class to generate.
    pub regime: Regime,
    /// Base seed; every (regime, seed) pair is an independent stream.
    pub seed: u64,
    /// Peak amplitude: wave-like regimes are normalized so the largest
    /// absolute value equals this exactly; noise is uniform in ±amplitude.
    pub amplitude: f64,
    /// Turbulence amplitude-decay slope (`a(k) ∝ k^{-slope}`, default 5/3,
    /// the Kolmogorov label).  Larger = smoother spectrum.
    pub spectral_slope: f64,
    /// Number of random Fourier modes for turbulence.
    pub modes: usize,
    /// Number of discontinuity fronts for the shock regime.
    pub shock_count: usize,
    /// Number of telemetry channels for the oscillatory regime.
    pub channels: usize,
    /// Number of compact blobs for the sparse regime (0 = all-constant).
    pub blob_count: usize,
    /// Exact background value of the sparse regime.
    pub background: f64,
}

impl ScenarioConfig {
    /// The stock configuration of a regime at the default seed.
    pub fn new(regime: Regime) -> Self {
        Self {
            regime,
            seed: DEFAULT_SEED,
            amplitude: 1.0,
            spectral_slope: 5.0 / 3.0,
            modes: 96,
            shock_count: 3,
            channels: 8,
            blob_count: 5,
            background: 0.0,
        }
    }

    /// Same scenario, different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the field at one time-step, with its oracle descriptor.
    ///
    /// Values are synthesized in `f64`, stored at `dtype`, and the
    /// descriptor's statistics are computed from the *stored* values (so
    /// they are exact for what a codec actually sees, including `f32`
    /// rounding).  Consecutive time-steps are coherent for every regime
    /// except noise, which is resampled per step.
    ///
    /// # Panics
    /// Panics if `amplitude` is not finite and positive, or a count knob
    /// needed by the regime is degenerate (`channels == 0` for oscillatory).
    pub fn generate(&self, dims: &Dims, dtype: DType, timestep: usize) -> ScenarioField {
        assert!(
            self.amplitude.is_finite() && self.amplitude > 0.0,
            "scenario amplitude must be finite and positive, got {}",
            self.amplitude
        );
        let raw = gen::generate(self, dims, timestep);
        let dataset = match dtype {
            DType::F32 => Dataset::from_f32(
                "scenario",
                self.regime.name(),
                timestep,
                dims.clone(),
                raw.values.iter().map(|&v| v as f32).collect(),
            ),
            DType::F64 => Dataset::from_f64(
                "scenario",
                self.regime.name(),
                timestep,
                dims.clone(),
                raw.values,
            ),
        };
        let descriptor = ScenarioDescriptor::new(self, &dataset, raw.ground_truth);
        ScenarioField {
            dataset,
            descriptor,
        }
    }
}

/// Regime-specific analytic ground truth carried from the generator to the
/// descriptor (the parts that cannot be recomputed from the values alone).
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct GroundTruth {
    /// Turbulence: the amplitude-decay slope actually used.
    pub spectral_slope: Option<f64>,
    /// Shock: normalized front positions along the slowest axis, sorted.
    pub shock_fronts: Option<Vec<f64>>,
    /// Sparse: exact fraction of samples equal to the background value
    /// (counted during generation, before dtype narrowing — the background
    /// is dtype-exact by construction).
    pub constant_fraction: Option<f64>,
    /// Sparse: the exact background value.
    pub background: Option<f64>,
}

/// The oracle: everything the test matrix knows to be true of a generated
/// field, independent of any codec.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDescriptor {
    /// Regime registry name (`"smooth"`, …).
    pub name: &'static str,
    /// The regime.
    pub regime: Regime,
    /// Grid shape of the emitted dataset.
    pub dims: Dims,
    /// Element type of the emitted dataset.
    pub dtype: DType,
    /// Seed the field was generated from.
    pub seed: u64,
    /// Time-step the field was generated at.
    pub timestep: usize,
    /// Exact minimum of the stored values (after any dtype narrowing).
    pub min: f64,
    /// Exact maximum of the stored values.
    pub max: f64,
    /// Mean of the stored values: left-to-right `f64` summation over the
    /// widened values, divided by the point count.  Exactly reproducible.
    pub mean: f64,
    /// Root-mean-square of the stored values, same summation contract.
    pub rms: f64,
    /// Turbulence: the amplitude-decay slope (None for other regimes).
    pub spectral_slope: Option<f64>,
    /// Shock: normalized discontinuity positions along the slowest axis at
    /// this time-step, sorted ascending (None for other regimes).
    pub shock_fronts: Option<Vec<f64>>,
    /// Sparse: exact fraction of samples equal to [`Self::background`].
    pub constant_fraction: Option<f64>,
    /// Sparse: the exactly-constant background value.
    pub background: Option<f64>,
    /// Position in the universal compressibility chain (see
    /// [`Regime::compress_rank`]).
    pub compress_rank: Option<u8>,
}

impl ScenarioDescriptor {
    fn new(config: &ScenarioConfig, dataset: &Dataset, truth: GroundTruth) -> Self {
        let values = dataset.values_f64();
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut sum, mut sum_sq) = (0.0f64, 0.0f64);
        for &v in &values {
            min = min.min(v);
            max = max.max(v);
            sum += v;
            sum_sq += v * v;
        }
        let n = values.len() as f64;
        Self {
            name: config.regime.name(),
            regime: config.regime,
            dims: dataset.dims.clone(),
            dtype: dataset.dtype(),
            seed: config.seed,
            timestep: dataset.timestep,
            min,
            max,
            mean: sum / n,
            rms: (sum_sq / n).sqrt(),
            spectral_slope: truth.spectral_slope,
            shock_fronts: truth.shock_fronts,
            constant_fraction: truth.constant_fraction,
            background: truth.background,
            compress_rank: config.regime.compress_rank(),
        }
    }

    /// `max - min`, the normalization for value-range-relative bounds.
    pub fn value_range(&self) -> f64 {
        self.max - self.min
    }
}

/// A generated field with its oracle descriptor.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioField {
    /// The dataset, ready for any `Compressor`-shaped API.
    pub dataset: Dataset,
    /// What the test matrix knows to be true of it.
    pub descriptor: ScenarioDescriptor,
}

/// The regime registry names, in chain order.
pub fn names() -> [&'static str; 6] {
    [
        Regime::Smooth.name(),
        Regime::Turbulence.name(),
        Regime::Oscillatory.name(),
        Regime::Shock.name(),
        Regime::Sparse.name(),
        Regime::Noise.name(),
    ]
}

/// Stock scenario for a regime name (default knobs, default seed); `None`
/// for unknown names — see [`manifest::suggest`] for a did-you-mean helper.
pub fn by_name(name: &str) -> Option<ScenarioConfig> {
    Regime::parse(name).map(ScenarioConfig::new)
}

/// The six stock scenarios at one seed, in chain order.
pub fn all_scenarios(seed: u64) -> Vec<ScenarioConfig> {
    REGIMES
        .iter()
        .map(|&r| ScenarioConfig::new(r).with_seed(seed))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_parse_round_trip() {
        for regime in REGIMES {
            assert_eq!(Regime::parse(regime.name()), Some(regime));
            assert_eq!(by_name(regime.name()).unwrap().regime, regime);
        }
        assert_eq!(Regime::parse("turbulance"), None);
        assert!(by_name("").is_none());
    }

    #[test]
    fn chain_ranks_cover_the_committed_ordering() {
        assert_eq!(Regime::Smooth.compress_rank(), Some(0));
        assert_eq!(Regime::Turbulence.compress_rank(), Some(1));
        assert_eq!(Regime::Noise.compress_rank(), Some(2));
        for regime in [Regime::Oscillatory, Regime::Shock, Regime::Sparse] {
            assert_eq!(regime.compress_rank(), None);
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let dims = Dims::d2(24, 24);
        for regime in REGIMES {
            let config = ScenarioConfig::new(regime).with_seed(7);
            let a = config.generate(&dims, DType::F32, 1);
            let b = config.generate(&dims, DType::F32, 1);
            assert_eq!(a, b, "{regime} must be bit-identical per seed");
            let c = config.with_seed(8).generate(&dims, DType::F32, 1);
            assert_ne!(
                a.dataset.buffer, c.dataset.buffer,
                "{regime} must depend on the seed"
            );
        }
    }

    #[test]
    fn descriptor_stats_are_exact_for_both_dtypes() {
        let dims = Dims::d3(8, 10, 12);
        for regime in REGIMES {
            for dtype in [DType::F32, DType::F64] {
                let field = ScenarioConfig::new(regime).generate(&dims, dtype, 2);
                let values = field.dataset.values_f64();
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mean = values.iter().sum::<f64>() / values.len() as f64;
                let rms = (values.iter().map(|v| v * v).sum::<f64>() / values.len() as f64).sqrt();
                let d = &field.descriptor;
                assert_eq!((d.min, d.max), (min, max), "{regime:?}/{dtype:?}");
                assert_eq!(d.mean, mean, "{regime:?}/{dtype:?}");
                assert_eq!(d.rms, rms, "{regime:?}/{dtype:?}");
                assert!(values.iter().all(|v| v.is_finite()), "{regime:?}/{dtype:?}");
            }
        }
    }

    #[test]
    fn wave_regimes_hit_the_requested_amplitude() {
        // Peak-normalized regimes: the largest |value| equals the amplitude
        // exactly in f64 (f32 narrows it by at most one ulp).
        for regime in [Regime::Smooth, Regime::Turbulence, Regime::Oscillatory] {
            let field = ScenarioConfig::new(regime).generate(&Dims::d1(4096), DType::F64, 0);
            let peak = field.descriptor.max.abs().max(field.descriptor.min.abs());
            assert_eq!(peak, 1.0, "{regime}");
        }
    }

    #[test]
    fn sparse_ground_truth_counts_background_exactly() {
        let config = ScenarioConfig::new(Regime::Sparse);
        let field = config.generate(&Dims::d2(48, 48), DType::F64, 0);
        let d = &field.descriptor;
        let background = d.background.unwrap();
        let zeros = field
            .dataset
            .values_f64()
            .iter()
            .filter(|&&v| v == background)
            .count();
        assert_eq!(
            d.constant_fraction.unwrap(),
            zeros as f64 / field.dataset.len() as f64
        );
        assert!(d.constant_fraction.unwrap() > 0.3, "mostly background");

        // Zero blobs degenerates to an all-constant field.
        let mut all_constant = config.clone();
        all_constant.blob_count = 0;
        let field = all_constant.generate(&Dims::d1(512), DType::F32, 0);
        assert_eq!(field.descriptor.constant_fraction, Some(1.0));
        assert_eq!(field.descriptor.min, field.descriptor.max);
    }

    #[test]
    fn shock_fronts_are_reported_sorted_in_unit_range() {
        let field = ScenarioConfig::new(Regime::Shock).generate(&Dims::d1(2048), DType::F64, 3);
        let fronts = field.descriptor.shock_fronts.clone().unwrap();
        assert_eq!(fronts.len(), 3);
        assert!(fronts.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert!(fronts.iter().all(|p| (0.0..1.0).contains(p)));
    }

    #[test]
    fn timesteps_are_coherent_except_noise() {
        let dims = Dims::d1(4096);
        let rmse = |a: &[f64], b: &[f64]| {
            (a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>() / a.len() as f64).sqrt()
        };
        for regime in REGIMES {
            let config = ScenarioConfig::new(regime);
            let t0 = config.generate(&dims, DType::F64, 0).dataset.values_f64();
            let t1 = config.generate(&dims, DType::F64, 1).dataset.values_f64();
            let step = rmse(&t0, &t1);
            assert!(step > 0.0, "{regime}: steps must differ");
            if regime != Regime::Noise {
                let spread = rmse(&t0, &vec![0.0; t0.len()]);
                assert!(
                    step < spread,
                    "{regime}: consecutive steps should be correlated \
                     (step rmse {step}, field rms {spread})"
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "amplitude must be finite")]
    fn bad_amplitude_panics() {
        let mut config = ScenarioConfig::new(Regime::Noise);
        config.amplitude = 0.0;
        config.generate(&Dims::d1(8), DType::F32, 0);
    }
}
