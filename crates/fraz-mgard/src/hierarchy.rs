//! Dyadic grid hierarchy and multilevel interpolation.
//!
//! MGARD represents a field as multilevel coefficients: each node of a finer
//! level stores its deviation from the (multi)linear interpolation of the
//! surrounding coarser-level nodes.  This module provides the level
//! enumeration and the interpolation operator used by the codec:
//!
//! * [`level_steps`] — the dyadic step sizes from the coarsest level to the
//!   finest (step 1),
//! * [`level_nodes`] — the grid nodes introduced at a given level (present on
//!   the level's lattice but not on the next-coarser one),
//! * [`interpolate`] — multilinear interpolation of a node from the
//!   already-reconstructed nodes of the coarser lattice, with boundary
//!   clamping so arbitrary (non power-of-two-plus-one) grids work.

/// Padded 3-D grid dimensions, slowest axis first.
pub type Dims3 = [usize; 3];

/// Dyadic step sizes from coarse to fine: `[S, S/2, …, 2, 1]` where `S` is
/// the largest power of two not exceeding the longest axis (capped so the
/// coarsest grid keeps at least two nodes per non-degenerate axis).
pub fn level_steps(dims: Dims3) -> Vec<usize> {
    let longest = dims.iter().copied().max().unwrap_or(1).max(2);
    let mut s = 1usize;
    while s * 2 < longest {
        s *= 2;
    }
    let mut steps = Vec::new();
    while s >= 1 {
        steps.push(s);
        if s == 1 {
            break;
        }
        s /= 2;
    }
    steps
}

/// Nodes introduced at the level with step `s`: points on the `s`-lattice
/// that are not on the `2s`-lattice.  For the coarsest level (`coarsest =
/// true`) every `s`-lattice node is included.
pub fn level_nodes(dims: Dims3, s: usize, coarsest: bool) -> Vec<[usize; 3]> {
    let mut nodes = Vec::new();
    let mut z = 0;
    while z < dims[0] {
        let mut y = 0;
        while y < dims[1] {
            let mut x = 0;
            while x < dims[2] {
                let on_coarser = z % (2 * s) == 0 && y % (2 * s) == 0 && x % (2 * s) == 0;
                if coarsest || !on_coarser {
                    nodes.push([z, y, x]);
                }
                x += s;
            }
            y += s;
        }
        z += s;
    }
    nodes
}

/// Multilinear interpolation of the node at `coord` from the surrounding
/// `2s`-lattice nodes of `grid`.  Axes on which the coordinate already lies
/// on the coarser lattice contribute the node itself; other axes average the
/// two neighbours at `±s` (clamped to the domain).
pub fn interpolate(grid: &[f64], dims: Dims3, coord: [usize; 3], s: usize) -> f64 {
    // Collect, per axis, the coarser-lattice coordinates that bracket this
    // node together with their weights.
    let mut axis_points: [Vec<(usize, f64)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for axis in 0..3 {
        let c = coord[axis];
        if c % (2 * s) == 0 {
            axis_points[axis].push((c, 1.0));
        } else {
            let lo = c - s;
            let hi = c + s;
            if hi < dims[axis] {
                axis_points[axis].push((lo, 0.5));
                axis_points[axis].push((hi, 0.5));
            } else {
                // Clamped boundary: only the lower neighbour exists.
                axis_points[axis].push((lo, 1.0));
            }
        }
    }
    let mut value = 0.0;
    for &(z, wz) in &axis_points[0] {
        for &(y, wy) in &axis_points[1] {
            for &(x, wx) in &axis_points[2] {
                value += wz * wy * wx * grid[(z * dims[1] + y) * dims[2] + x];
            }
        }
    }
    value
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_descend_to_one() {
        assert_eq!(level_steps([1, 16, 16]), vec![8, 4, 2, 1]);
        assert_eq!(level_steps([1, 5, 7]), vec![4, 2, 1]);
        assert_eq!(level_steps([1, 2, 2]), vec![1]);
        assert_eq!(level_steps([9, 9, 9]), vec![8, 4, 2, 1]);
    }

    #[test]
    fn level_nodes_partition_the_grid() {
        let dims = [1, 9, 13];
        let steps = level_steps(dims);
        let mut seen = std::collections::HashSet::new();
        for (i, &s) in steps.iter().enumerate() {
            for node in level_nodes(dims, s, i == 0) {
                assert!(seen.insert(node), "node {node:?} visited twice");
            }
        }
        assert_eq!(seen.len(), dims[0] * dims[1] * dims[2]);
    }

    #[test]
    fn level_nodes_partition_3d_grid() {
        let dims = [5, 6, 7];
        let steps = level_steps(dims);
        let total: usize = steps
            .iter()
            .enumerate()
            .map(|(i, &s)| level_nodes(dims, s, i == 0).len())
            .sum();
        assert_eq!(total, 5 * 6 * 7);
    }

    #[test]
    fn interpolation_is_exact_for_linear_fields() {
        let dims = [1, 9, 9];
        let f = |y: usize, x: usize| 2.0 * y as f64 - 3.0 * x as f64 + 1.0;
        let mut grid = vec![0.0; 81];
        for y in 0..9 {
            for x in 0..9 {
                grid[y * 9 + x] = f(y, x);
            }
        }
        // Interior odd nodes at any level are interpolated exactly.
        for s in [1usize, 2, 4] {
            for node in level_nodes(dims, s, false) {
                let [_, y, x] = node;
                if y + s < 9 && x + s < 9 && y >= s && x >= s {
                    let interp = interpolate(&grid, dims, node, s);
                    assert!((interp - f(y, x)).abs() < 1e-9, "s={s} node={node:?}");
                }
            }
        }
    }

    #[test]
    fn interpolation_on_lattice_nodes_returns_the_node() {
        let dims = [4, 4, 4];
        let grid: Vec<f64> = (0..64).map(|i| i as f64).collect();
        // A node whose coordinates are all multiples of 2s is its own
        // interpolant.
        assert_eq!(interpolate(&grid, dims, [0, 0, 0], 1), grid[0]);
        assert_eq!(
            interpolate(&grid, dims, [2, 2, 2], 1),
            grid[(2 * 4 + 2) * 4 + 2]
        );
    }

    #[test]
    fn boundary_nodes_clamp_to_existing_neighbours() {
        let dims = [1, 1, 6];
        let grid = vec![0.0, 10.0, 20.0, 30.0, 40.0, 50.0];
        // Node x=5 at step 1: neighbour x=6 does not exist, so it takes x=4.
        let v = interpolate(&grid, dims, [0, 0, 5], 1);
        assert_eq!(v, 40.0);
        // Node x=3 at step 1 averages x=2 and x=4.
        let v = interpolate(&grid, dims, [0, 0, 3], 1);
        assert_eq!(v, 30.0);
    }
}
