//! An MGARD-like multilevel error-controlled lossy compressor.
//!
//! MGARD (MultiGrid Adaptive Reduction of Data) decomposes a field over a
//! hierarchy of dyadic grids and stores quantized multilevel coefficients,
//! offering *guaranteed, computable* bounds on the reconstruction error in a
//! choice of norms.  This crate reproduces that structure in a simplified
//! but behaviour-preserving form (see DESIGN.md):
//!
//! * a dyadic grid hierarchy with multilinear interpolation between levels
//!   ([`hierarchy`]),
//! * coefficients quantized against the *reconstructed* coarser levels, so
//!   the ∞-norm (absolute-error) guarantee holds exactly,
//! * an L2-norm mode that maps a target L2/RMS error to the equivalent
//!   uniform quantization step,
//! * Huffman + LZSS back-end coding (the same lossless substrate SZ uses,
//!   including its per-thread reusable dictionary encoder — repeated
//!   compressions from the search loop's pool workers pay the LZSS scratch
//!   allocation once per worker, not once per call).
//!
//! Like the original MGARD 0.x evaluated in the FRaZ paper, **1-D data is
//! not supported** — the paper's Fig. 9(d)/(e) omit MGARD for HACC and
//! EXAALT for the same reason.
//!
//! # Example
//!
//! ```
//! use fraz_data::{Dataset, Dims};
//! use fraz_mgard::{compress, decompress, MgardConfig};
//!
//! let values: Vec<f32> = (0..64 * 64)
//!     .map(|i| ((i % 64) as f32 * 0.1).sin() + ((i / 64) as f32 * 0.07).cos())
//!     .collect();
//! let original = Dataset::from_f32("demo", "field", 0, Dims::d2(64, 64), values);
//! let packed = compress(&original, &MgardConfig::infinity_norm(1e-3)).unwrap();
//! let restored = decompress(&packed).unwrap();
//! let err = original.values_f64().iter().zip(restored.values_f64().iter())
//!     .map(|(a, b)| (a - b).abs()).fold(0.0f64, f64::max);
//! assert!(err <= 1e-3);
//! ```

pub mod hierarchy;

use fraz_data::{DType, DataBuffer, Dataset, Dims};
use fraz_lossless::bytesio::{ByteReader, ByteWriter};
use fraz_lossless::huffman;

use hierarchy::{interpolate, level_nodes, level_steps, Dims3};

/// Stream magic ("FMG1").
const MAGIC: u32 = 0x464D_4731;
/// Format version.
const VERSION: u8 = 1;
/// Quantization code reserved for exactly-stored values.
const UNPREDICTABLE: u32 = 0;
/// Number of quantization bins.
const CAPACITY: u32 = 65536;

/// Error-control norm, mirroring MGARD's `infinity` and `L2` options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorNorm {
    /// Bound the maximum pointwise error (`max_i |d_i - d'_i| ≤ tolerance`).
    Infinity,
    /// Bound the root-mean-square error (`rmse ≤ tolerance`).  Internally the
    /// tolerance is mapped to a pointwise quantization bound of
    /// `1.5 · tolerance`: uniform quantization noise bounded by `b` has an
    /// RMS of `b/√3 ≈ 0.58·b`, so a factor comfortably below `√3` keeps the
    /// RMS target satisfied with margin rather than only in expectation.
    L2,
}

/// Compressor configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MgardConfig {
    /// Error tolerance in the chosen norm.
    pub tolerance: f64,
    /// Which norm the tolerance applies to.
    pub norm: ErrorNorm,
}

impl MgardConfig {
    /// ∞-norm (absolute error) configuration.
    pub fn infinity_norm(tolerance: f64) -> Self {
        Self {
            tolerance,
            norm: ErrorNorm::Infinity,
        }
    }

    /// L2-norm (RMS error) configuration.
    pub fn l2_norm(tolerance: f64) -> Self {
        Self {
            tolerance,
            norm: ErrorNorm::L2,
        }
    }

    /// The pointwise quantization bound implied by the configuration.
    pub fn pointwise_bound(&self) -> f64 {
        match self.norm {
            ErrorNorm::Infinity => self.tolerance,
            ErrorNorm::L2 => self.tolerance * 1.5,
        }
    }

    fn validate(&self) -> Result<(), MgardError> {
        if !(self.tolerance > 0.0 && self.tolerance.is_finite()) {
            return Err(MgardError::InvalidConfig(format!(
                "tolerance must be positive and finite, got {}",
                self.tolerance
            )));
        }
        Ok(())
    }
}

/// Errors produced by the MGARD-like codec.
#[derive(Debug, Clone, PartialEq)]
pub enum MgardError {
    /// The configuration is invalid.
    InvalidConfig(String),
    /// The input dimensionality is unsupported (1-D data).
    UnsupportedDimensionality(usize),
    /// The compressed stream is malformed or truncated.
    Corrupt(String),
}

impl std::fmt::Display for MgardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MgardError::InvalidConfig(msg) => write!(f, "invalid MGARD configuration: {msg}"),
            MgardError::UnsupportedDimensionality(d) => {
                write!(
                    f,
                    "MGARD-like codec supports 2-D and 3-D data only, got {d}-D"
                )
            }
            MgardError::Corrupt(msg) => write!(f, "corrupt MGARD stream: {msg}"),
        }
    }
}

impl std::error::Error for MgardError {}

impl From<fraz_lossless::CodingError> for MgardError {
    fn from(e: fraz_lossless::CodingError) -> Self {
        MgardError::Corrupt(e.to_string())
    }
}

fn pad_dims(dims: &Dims) -> Result<Dims3, MgardError> {
    let d = dims.as_slice();
    match d.len() {
        2 => Ok([1, d[0], d[1]]),
        3 => Ok([d[0], d[1], d[2]]),
        other => Err(MgardError::UnsupportedDimensionality(other)),
    }
}

/// Traverse the hierarchy once, producing quantization codes and exact
/// values, with the reconstruction carried along so the bound is guaranteed.
fn encode_levels(
    values: &[f64],
    dims: Dims3,
    bound: f64,
    finalize: impl Fn(f64) -> f64,
) -> (Vec<u32>, Vec<f64>) {
    let radius = (CAPACITY / 2) as i64;
    let mut recon = vec![0.0f64; values.len()];
    let mut codes = Vec::with_capacity(values.len());
    let mut exact = Vec::new();
    let steps = level_steps(dims);
    for (li, &s) in steps.iter().enumerate() {
        for node in level_nodes(dims, s, li == 0) {
            let idx = (node[0] * dims[1] + node[1]) * dims[2] + node[2];
            let orig = values[idx];
            let pred = if li == 0 {
                0.0
            } else {
                interpolate(&recon, dims, node, s)
            };
            let diff = orig - pred;
            let code_f = (diff / (2.0 * bound)).round();
            let mut stored = false;
            if code_f.is_finite() && code_f.abs() < radius as f64 {
                let code = radius + code_f as i64;
                if code > 0 && code < CAPACITY as i64 {
                    let recon_val = finalize(pred + 2.0 * bound * (code - radius) as f64);
                    if (recon_val - orig).abs() <= bound && recon_val.is_finite() {
                        codes.push(code as u32);
                        recon[idx] = recon_val;
                        stored = true;
                    }
                }
            }
            if !stored {
                codes.push(UNPREDICTABLE);
                exact.push(finalize(orig));
                recon[idx] = finalize(orig);
            }
        }
    }
    (codes, exact)
}

fn decode_levels(
    codes: &[u32],
    exact: &[f64],
    dims: Dims3,
    bound: f64,
    finalize: impl Fn(f64) -> f64,
) -> Result<Vec<f64>, MgardError> {
    let n = dims[0] * dims[1] * dims[2];
    if codes.len() < n {
        return Err(MgardError::Corrupt(format!(
            "expected {n} coefficients, found {}",
            codes.len()
        )));
    }
    let radius = (CAPACITY / 2) as i64;
    let mut recon = vec![0.0f64; n];
    let mut code_iter = codes.iter();
    let mut exact_iter = exact.iter();
    let steps = level_steps(dims);
    for (li, &s) in steps.iter().enumerate() {
        for node in level_nodes(dims, s, li == 0) {
            let idx = (node[0] * dims[1] + node[1]) * dims[2] + node[2];
            let code = *code_iter.next().expect("length checked above");
            recon[idx] = if code == UNPREDICTABLE {
                *exact_iter
                    .next()
                    .ok_or_else(|| MgardError::Corrupt("exact-value list truncated".into()))?
            } else {
                let pred = if li == 0 {
                    0.0
                } else {
                    interpolate(&recon, dims, node, s)
                };
                finalize(pred + 2.0 * bound * (code as i64 - radius) as f64)
            };
        }
    }
    Ok(recon)
}

/// Compress a 2-D or 3-D dataset under the configured error norm.
pub fn compress(dataset: &Dataset, config: &MgardConfig) -> Result<Vec<u8>, MgardError> {
    config.validate()?;
    let dims3 = pad_dims(&dataset.dims)?;
    let bound = config.pointwise_bound();
    let values = dataset.values_f64();
    let dtype = dataset.dtype();
    let (codes, exact) = match dtype {
        DType::F32 => encode_levels(&values, dims3, bound, |v| v as f32 as f64),
        DType::F64 => encode_levels(&values, dims3, bound, |v| v),
    };

    let mut header = ByteWriter::with_capacity(64);
    header.put_u32(MAGIC);
    header.put_u8(VERSION);
    header.put_u8(match dtype {
        DType::F32 => 0,
        DType::F64 => 1,
    });
    header.put_u8(dataset.dims.ndims() as u8);
    for &d in dataset.dims.as_slice() {
        header.put_u64(d as u64);
    }
    header.put_u64(dataset.timestep as u64);
    header.put_str(&dataset.application);
    header.put_str(&dataset.field);
    header.put_u8(match config.norm {
        ErrorNorm::Infinity => 0,
        ErrorNorm::L2 => 1,
    });
    header.put_f64(config.tolerance);

    let mut body = ByteWriter::with_capacity(values.len());
    body.put_section(&huffman::encode_symbols(&codes));
    body.put_u64(exact.len() as u64);
    for &v in &exact {
        match dtype {
            DType::F32 => body.put_f32(v as f32),
            DType::F64 => body.put_f64(v),
        }
    }

    let mut out = header.into_bytes();
    out.extend_from_slice(&fraz_lossless::compress(&body.into_bytes()));
    Ok(out)
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Dataset, MgardError> {
    let mut r = ByteReader::new(data);
    let magic = r.get_u32()?;
    if magic != MAGIC {
        return Err(MgardError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(MgardError::Corrupt(format!(
            "unsupported version {version}"
        )));
    }
    let dtype = match r.get_u8()? {
        0 => DType::F32,
        1 => DType::F64,
        other => return Err(MgardError::Corrupt(format!("unknown dtype tag {other}"))),
    };
    let ndims = r.get_u8()? as usize;
    if !(2..=3).contains(&ndims) {
        return Err(MgardError::Corrupt(format!(
            "invalid dimensionality {ndims}"
        )));
    }
    let mut axes = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = r.get_u64()? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(MgardError::Corrupt(format!("invalid axis length {d}")));
        }
        axes.push(d);
    }
    let dims = Dims::new(&axes);
    let timestep = r.get_u64()? as usize;
    let application = r.get_str()?;
    let field = r.get_str()?;
    let norm = match r.get_u8()? {
        0 => ErrorNorm::Infinity,
        1 => ErrorNorm::L2,
        other => return Err(MgardError::Corrupt(format!("unknown norm tag {other}"))),
    };
    let tolerance = r.get_f64()?;
    let config = MgardConfig { tolerance, norm };
    config
        .validate()
        .map_err(|e| MgardError::Corrupt(format!("invalid header parameters: {e}")))?;

    let body = fraz_lossless::decompress(r.rest())?;
    let mut b = ByteReader::new(&body);
    let codes = huffman::decode_symbols(b.get_section()?)?;
    let num_exact = b.get_u64()? as usize;
    if num_exact > dims.len() {
        return Err(MgardError::Corrupt(
            "exact-value count exceeds grid size".into(),
        ));
    }
    let mut exact = Vec::with_capacity(num_exact);
    for _ in 0..num_exact {
        exact.push(match dtype {
            DType::F32 => b.get_f32()? as f64,
            DType::F64 => b.get_f64()?,
        });
    }

    let dims3 = pad_dims(&dims)?;
    let bound = config.pointwise_bound();
    let values = match dtype {
        DType::F32 => decode_levels(&codes, &exact, dims3, bound, |v| v as f32 as f64),
        DType::F64 => decode_levels(&codes, &exact, dims3, bound, |v| v),
    }?;

    Ok(Dataset {
        application,
        field,
        timestep,
        dims,
        buffer: DataBuffer::from_f64(values, dtype),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth2d(rows: usize, cols: usize) -> Dataset {
        let values: Vec<f32> = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                ((r as f32 * 0.11).sin() * 4.0 + (c as f32 * 0.07).cos() * 6.0) as f32
            })
            .collect();
        Dataset::from_f32("test", "smooth2d", 0, Dims::d2(rows, cols), values)
    }

    fn smooth3d(nz: usize, ny: usize, nx: usize) -> Dataset {
        let mut values = Vec::with_capacity(nz * ny * nx);
        for z in 0..nz {
            for y in 0..ny {
                for x in 0..nx {
                    values.push(
                        ((x as f32 * 0.2).sin() + (y as f32 * 0.13).cos()) * 3.0 + z as f32 * 0.05,
                    );
                }
            }
        }
        Dataset::from_f32("test", "smooth3d", 0, Dims::d3(nz, ny, nx), values)
    }

    fn max_error(a: &Dataset, b: &Dataset) -> f64 {
        a.values_f64()
            .iter()
            .zip(b.values_f64().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    fn rmse(a: &Dataset, b: &Dataset) -> f64 {
        let n = a.len() as f64;
        (a.values_f64()
            .iter()
            .zip(b.values_f64().iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            / n)
            .sqrt()
    }

    #[test]
    fn infinity_norm_bound_holds_2d_and_3d() {
        for original in [smooth2d(33, 45), smooth3d(9, 17, 21)] {
            for tol in [1e-1, 1e-3, 1e-5] {
                let packed = compress(&original, &MgardConfig::infinity_norm(tol)).unwrap();
                let restored = decompress(&packed).unwrap();
                let err = max_error(&original, &restored);
                assert!(err <= tol, "tol {tol}: err {err}");
                assert_eq!(restored.dims, original.dims);
            }
        }
    }

    #[test]
    fn l2_norm_bound_holds() {
        let original = smooth2d(64, 64);
        for tol in [1e-2, 1e-4] {
            let packed = compress(&original, &MgardConfig::l2_norm(tol)).unwrap();
            let restored = decompress(&packed).unwrap();
            let err = rmse(&original, &restored);
            assert!(err <= tol, "tol {tol}: rmse {err}");
        }
    }

    #[test]
    fn smooth_fields_compress() {
        let original = smooth2d(128, 128);
        let packed = compress(&original, &MgardConfig::infinity_norm(1e-2)).unwrap();
        let ratio = original.byte_size() as f64 / packed.len() as f64;
        assert!(ratio > 4.0, "ratio {ratio:.2}");
    }

    #[test]
    fn one_dimensional_data_is_rejected() {
        let original = Dataset::from_f32("t", "f", 0, Dims::d1(100), vec![0.0; 100]);
        assert!(matches!(
            compress(&original, &MgardConfig::infinity_norm(1e-3)),
            Err(MgardError::UnsupportedDimensionality(1))
        ));
    }

    #[test]
    fn looser_tolerance_gives_smaller_streams() {
        let original = smooth3d(12, 20, 20);
        let tight = compress(&original, &MgardConfig::infinity_norm(1e-5)).unwrap();
        let loose = compress(&original, &MgardConfig::infinity_norm(1e-1)).unwrap();
        assert!(loose.len() < tight.len());
    }

    #[test]
    fn metadata_roundtrips() {
        let mut original = smooth2d(20, 30);
        original.field = "CLDHGH".into();
        original.timestep = 17;
        let packed = compress(&original, &MgardConfig::l2_norm(1e-3)).unwrap();
        let restored = decompress(&packed).unwrap();
        assert_eq!(restored.field, "CLDHGH");
        assert_eq!(restored.timestep, 17);
        assert_eq!(restored.dtype(), DType::F32);
    }

    #[test]
    fn f64_roundtrip() {
        let values: Vec<f64> = (0..40 * 40)
            .map(|i| ((i % 40) as f64 * 0.3).sin() * 1e5)
            .collect();
        let original = Dataset::from_f64("t", "f64", 0, Dims::d2(40, 40), values);
        let packed = compress(&original, &MgardConfig::infinity_norm(0.5)).unwrap();
        let restored = decompress(&packed).unwrap();
        assert_eq!(restored.dtype(), DType::F64);
        assert!(max_error(&original, &restored) <= 0.5);
    }

    #[test]
    fn invalid_configs_and_corrupt_streams_are_rejected() {
        let original = smooth2d(16, 16);
        assert!(compress(&original, &MgardConfig::infinity_norm(0.0)).is_err());
        assert!(compress(&original, &MgardConfig::infinity_norm(f64::INFINITY)).is_err());
        let packed = compress(&original, &MgardConfig::infinity_norm(1e-3)).unwrap();
        let mut bad = packed.clone();
        bad[0] ^= 0xff;
        assert!(decompress(&bad).is_err());
        assert!(decompress(&packed[..8]).is_err());
    }

    #[test]
    fn random_data_still_respects_bound() {
        let mut state = 99u64;
        let values: Vec<f32> = (0..50 * 50)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 40) as f32 / 1e3) - 8.0
            })
            .collect();
        let original = Dataset::from_f32("t", "rand", 0, Dims::d2(50, 50), values);
        for tol in [1e-6, 1e-2] {
            let packed = compress(&original, &MgardConfig::infinity_norm(tol)).unwrap();
            let restored = decompress(&packed).unwrap();
            assert!(max_error(&original, &restored) <= tol);
        }
    }
}
