//! Property tests for the MGARD-like codec: the ∞-norm guarantee must hold
//! for arbitrary finite 2-D/3-D data and decompression must never panic.

use proptest::prelude::*;

use fraz_data::{Dataset, Dims};
use fraz_mgard::{compress, decompress, MgardConfig};

fn max_error(a: &Dataset, b: &Dataset) -> f64 {
    a.values_f64()
        .iter()
        .zip(b.values_f64().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn infinity_bound_holds_2d(
        values in proptest::collection::vec(-1e5f32..1e5, 12 * 17),
        tol_exp in -5i32..2,
    ) {
        let tol = 10f64.powi(tol_exp);
        let original = Dataset::from_f32("prop", "f", 0, Dims::d2(12, 17), values);
        let packed = compress(&original, &MgardConfig::infinity_norm(tol)).unwrap();
        let restored = decompress(&packed).unwrap();
        prop_assert!(max_error(&original, &restored) <= tol);
        prop_assert_eq!(&restored.dims, &original.dims);
    }

    #[test]
    fn infinity_bound_holds_3d(
        values in proptest::collection::vec(-1e3f32..1e3, 5 * 6 * 7),
        tol_exp in -4i32..1,
    ) {
        let tol = 10f64.powi(tol_exp);
        let original = Dataset::from_f32("prop", "f", 0, Dims::d3(5, 6, 7), values);
        let packed = compress(&original, &MgardConfig::infinity_norm(tol)).unwrap();
        let restored = decompress(&packed).unwrap();
        prop_assert!(max_error(&original, &restored) <= tol);
    }

    #[test]
    fn l2_bound_holds_on_smooth_fields(amp in 0.1f32..100.0, tol_exp in -4i32..0) {
        let tol = 10f64.powi(tol_exp) * amp as f64;
        let values: Vec<f32> = (0..32 * 32)
            .map(|i| amp * (((i % 32) as f32 * 0.2).sin() + ((i / 32) as f32 * 0.1).cos()))
            .collect();
        let original = Dataset::from_f32("prop", "f", 0, Dims::d2(32, 32), values);
        let packed = compress(&original, &MgardConfig::l2_norm(tol)).unwrap();
        let restored = decompress(&packed).unwrap();
        let n = original.len() as f64;
        let rmse = (original
            .values_f64()
            .iter()
            .zip(restored.values_f64().iter())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            / n)
            .sqrt();
        prop_assert!(rmse <= tol, "rmse {} tol {}", rmse, tol);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decompress(&data);
    }
}

#[test]
fn bound_holds_on_synthetic_cesm_field() {
    let app = fraz_data::synthetic::cesm(48, 96, 2, 3);
    for field in ["CLDHGH", "FLDSC", "PHIS"] {
        let original = app.field(field, 1);
        let tol = (original.stats().value_range() * 1e-3).max(1e-9);
        let packed = compress(&original, &MgardConfig::infinity_norm(tol)).unwrap();
        let restored = decompress(&packed).unwrap();
        assert!(max_error(&original, &restored) <= tol, "{field}");
    }
}
