//! Property tests for the SZ-like codec's core invariants:
//! every roundtrip respects the absolute error bound, preserves shape and
//! metadata, and never panics on valid input.

use proptest::prelude::*;

use fraz_data::{Dataset, Dims};
use fraz_sz::{compress, decompress, SzConfig};

fn max_error(a: &Dataset, b: &Dataset) -> f64 {
    a.values_f64()
        .iter()
        .zip(b.values_f64().iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Strategy: smooth-ish 1-D field with random amplitude/frequency plus noise.
fn field_values(n: usize) -> impl Strategy<Value = Vec<f32>> {
    (
        proptest::collection::vec(-1.0f32..1.0, n),
        0.001f32..100.0,
        0.001f32..0.5,
    )
        .prop_map(move |(noise, amp, freq)| {
            (0..n)
                .map(|i| (i as f32 * freq).sin() * amp + noise[i] * amp * 0.01)
                .collect()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn error_bound_holds_1d(values in field_values(1200), eb in 1e-6f64..1.0) {
        let original = Dataset::from_f32("prop", "f", 0, Dims::d1(1200), values);
        let compressed = compress(&original, &SzConfig::with_error_bound(eb)).unwrap();
        let restored = decompress(&compressed).unwrap();
        prop_assert!(max_error(&original, &restored) <= eb);
        prop_assert_eq!(restored.len(), original.len());
        prop_assert_eq!(&restored.dims, &original.dims);
    }

    #[test]
    fn error_bound_holds_3d(values in field_values(11 * 13 * 7), eb in 1e-5f64..0.5) {
        let original = Dataset::from_f32("prop", "f", 1, Dims::d3(11, 13, 7), values);
        let compressed = compress(&original, &SzConfig::with_error_bound(eb)).unwrap();
        let restored = decompress(&compressed).unwrap();
        prop_assert!(max_error(&original, &restored) <= eb);
    }

    #[test]
    fn arbitrary_values_never_violate_bound(
        values in proptest::collection::vec(proptest::num::f32::NORMAL, 64..512),
        eb in 1e-8f64..1e3,
    ) {
        // Completely unstructured (but finite) data: the codec may fail to
        // compress it, but it must never violate the bound or panic.
        let n = values.len();
        let original = Dataset::from_f32("prop", "rand", 0, Dims::d1(n), values);
        let compressed = compress(&original, &SzConfig::with_error_bound(eb)).unwrap();
        let restored = decompress(&compressed).unwrap();
        prop_assert!(max_error(&original, &restored) <= eb);
    }

    #[test]
    fn compressed_stream_is_self_describing(values in field_values(600), t in 0usize..100) {
        let original = Dataset::from_f32("hurricane", "CLOUDf", t, Dims::d2(20, 30), values);
        let compressed = compress(&original, &SzConfig::default()).unwrap();
        let restored = decompress(&compressed).unwrap();
        prop_assert_eq!(restored.application, "hurricane");
        prop_assert_eq!(restored.field, "CLOUDf");
        prop_assert_eq!(restored.timestep, t);
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = decompress(&data);
    }
}

#[test]
fn error_bound_holds_on_synthetic_hurricane_field() {
    let app = fraz_data::synthetic::hurricane(8, 16, 16, 2, 7);
    for field in ["TCf", "CLOUDf", "QCLOUDf.log10"] {
        let original = app.field(field, 0);
        for eb in [1e-1, 1e-3] {
            let compressed = compress(&original, &SzConfig::with_error_bound(eb)).unwrap();
            let restored = decompress(&compressed).unwrap();
            assert!(
                max_error(&original, &restored) <= eb,
                "field {field}, eb {eb}"
            );
        }
    }
}
