//! An SZ-like error-bounded lossy compressor for scientific floating-point
//! data.
//!
//! This crate re-implements, from scratch and in safe Rust, the four-stage
//! compression model the FRaZ paper describes for SZ 2.x (§II-A1):
//!
//! 1. **Data prediction** — each grid block chooses between a 1-layer Lorenzo
//!    predictor and a per-block linear regression plane ([`predict`]).
//! 2. **Linear-scaling quantization** — prediction errors are quantized to
//!    integer codes under a user-specified absolute error bound
//!    ([`pipeline`]); points that cannot be represented within the bound are
//!    stored exactly.
//! 3. **Entropy encoding** — the quantization codes are Huffman coded
//!    (via [`fraz_lossless::huffman`]).
//! 4. **Dictionary encoding** — the entropy-coded stream (plus block
//!    metadata and unpredictable values) is passed through the LZSS
//!    dictionary coder (via [`fraz_lossless::compress`]), the stage that
//!    produces the non-monotonic ratio-vs-bound behaviour the paper
//!    documents in Fig. 3.  `fraz_lossless::compress` holds one reusable
//!    [`fraz_lossless::lzss::LzssEncoder`] per thread, so the fixed-ratio
//!    search loop — which calls [`compress`] once per candidate bound from
//!    the shared work-stealing pool — reuses one hash-chain/token scratch
//!    per pool worker instead of reallocating it every evaluation.
//!
//! The absolute error bound is a hard guarantee:
//! `max_i |d_i − d'_i| ≤ error_bound` for every input (verified by unit and
//! property tests).
//!
//! # Example
//!
//! ```
//! use fraz_data::{Dataset, Dims};
//! use fraz_sz::{compress, decompress, SzConfig};
//!
//! let values: Vec<f32> = (0..4096).map(|i| (i as f32 * 0.01).sin()).collect();
//! let original = Dataset::from_f32("demo", "wave", 0, Dims::d3(16, 16, 16), values);
//! let config = SzConfig::with_error_bound(1e-3);
//! let compressed = compress(&original, &config).unwrap();
//! let restored = decompress(&compressed).unwrap();
//! let worst = original
//!     .values_f64()
//!     .iter()
//!     .zip(restored.values_f64().iter())
//!     .map(|(a, b)| (a - b).abs())
//!     .fold(0.0f64, f64::max);
//! assert!(worst <= 1e-3);
//! assert!(compressed.len() < original.byte_size());
//! ```

pub mod pipeline;
pub mod predict;

use fraz_data::{DType, DataBuffer, Dataset, Dims};
use fraz_lossless::bytesio::{ByteReader, ByteWriter};
use fraz_lossless::huffman;

use pipeline::{EncodedBlocks, PipelineParams};

/// Stream magic ("FSZ1").
const MAGIC: u32 = 0x4653_5A31;
/// Format version.
const VERSION: u8 = 1;

/// Configuration of the SZ-like compressor.
#[derive(Debug, Clone, PartialEq)]
pub struct SzConfig {
    /// Absolute error bound (must be positive and finite).
    pub error_bound: f64,
    /// Block edge length; `None` selects 6 for 3-D, 16 for 2-D and 256 for
    /// 1-D data (the defaults the SZ papers use).
    pub block_size: Option<usize>,
    /// Number of linear-scaling quantization bins.
    pub quant_capacity: u32,
}

impl Default for SzConfig {
    fn default() -> Self {
        Self {
            error_bound: 1e-3,
            block_size: None,
            quant_capacity: 65536,
        }
    }
}

impl SzConfig {
    /// Configuration with the given absolute error bound and default
    /// block/quantization settings.
    pub fn with_error_bound(error_bound: f64) -> Self {
        Self {
            error_bound,
            ..Default::default()
        }
    }

    fn block_for(&self, ndims: usize) -> usize {
        self.block_size.unwrap_or(match ndims {
            1 => 256,
            2 => 16,
            _ => 6,
        })
    }

    fn validate(&self) -> Result<(), SzError> {
        if !(self.error_bound > 0.0 && self.error_bound.is_finite()) {
            return Err(SzError::InvalidConfig(format!(
                "error bound must be positive and finite, got {}",
                self.error_bound
            )));
        }
        if self.quant_capacity < 4 || self.quant_capacity > (1 << 24) {
            return Err(SzError::InvalidConfig(format!(
                "quantization capacity {} out of range [4, 2^24]",
                self.quant_capacity
            )));
        }
        if let Some(b) = self.block_size {
            if b == 0 {
                return Err(SzError::InvalidConfig("block size must be non-zero".into()));
            }
        }
        Ok(())
    }
}

/// Errors produced by the SZ-like codec.
#[derive(Debug, Clone, PartialEq)]
pub enum SzError {
    /// The configuration is invalid (non-positive bound, zero block, …).
    InvalidConfig(String),
    /// The compressed stream is malformed or truncated.
    Corrupt(String),
}

impl std::fmt::Display for SzError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SzError::InvalidConfig(msg) => write!(f, "invalid SZ configuration: {msg}"),
            SzError::Corrupt(msg) => write!(f, "corrupt SZ stream: {msg}"),
        }
    }
}

impl std::error::Error for SzError {}

impl From<fraz_lossless::CodingError> for SzError {
    fn from(e: fraz_lossless::CodingError) -> Self {
        SzError::Corrupt(e.to_string())
    }
}

fn pad_dims(dims: &Dims) -> [usize; 3] {
    let d = dims.as_slice();
    match d.len() {
        1 => [1, 1, d[0]],
        2 => [1, d[0], d[1]],
        3 => [d[0], d[1], d[2]],
        _ => {
            // Fold leading axes together; the pipeline only needs a 3-D view
            // of the same row-major layout.
            let lead: usize = d[..d.len() - 2].iter().product();
            [lead, d[d.len() - 2], d[d.len() - 1]]
        }
    }
}

/// Compress a dataset under an absolute error bound.
pub fn compress(dataset: &Dataset, config: &SzConfig) -> Result<Vec<u8>, SzError> {
    config.validate()?;
    let dims3 = pad_dims(&dataset.dims);
    let block = config.block_for(dataset.dims.ndims());
    let params = PipelineParams {
        error_bound: config.error_bound,
        block_size: block,
        capacity: config.quant_capacity,
    };
    let values = dataset.values_f64();
    let dtype = dataset.dtype();
    let enc = match dtype {
        DType::F32 => pipeline::encode(&values, dims3, &params, |v| v as f32 as f64),
        DType::F64 => pipeline::encode(&values, dims3, &params, |v| v),
    };

    // ---- header (uncompressed) ----
    let mut header = ByteWriter::with_capacity(64);
    header.put_u32(MAGIC);
    header.put_u8(VERSION);
    header.put_u8(match dtype {
        DType::F32 => 0,
        DType::F64 => 1,
    });
    header.put_u8(dataset.dims.ndims() as u8);
    for &d in dataset.dims.as_slice() {
        header.put_u64(d as u64);
    }
    header.put_u64(dataset.timestep as u64);
    header.put_str(&dataset.application);
    header.put_str(&dataset.field);
    header.put_f64(config.error_bound);
    header.put_u32(block as u32);
    header.put_u32(config.quant_capacity);

    // ---- body (dictionary-coded) ----
    let mut body = ByteWriter::with_capacity(values.len());
    body.put_u64(enc.regression_flags.len() as u64);
    let mut flag_bytes = vec![0u8; (enc.regression_flags.len() + 7) / 8];
    for (i, &flag) in enc.regression_flags.iter().enumerate() {
        if flag {
            flag_bytes[i / 8] |= 1 << (i % 8);
        }
    }
    body.put_bytes(&flag_bytes);
    body.put_u64(enc.reg_coeffs.len() as u64);
    for c in &enc.reg_coeffs {
        for &v in c {
            body.put_f32(v);
        }
    }
    body.put_section(&huffman::encode_symbols(&enc.quant_codes));
    body.put_u64(enc.unpredictable.len() as u64);
    for &v in &enc.unpredictable {
        match dtype {
            DType::F32 => body.put_f32(v as f32),
            DType::F64 => body.put_f64(v),
        }
    }

    let mut out = header.into_bytes();
    out.extend_from_slice(&fraz_lossless::compress(&body.into_bytes()));
    Ok(out)
}

/// Decompress a stream produced by [`compress`].
pub fn decompress(data: &[u8]) -> Result<Dataset, SzError> {
    let mut r = ByteReader::new(data);
    let magic = r.get_u32()?;
    if magic != MAGIC {
        return Err(SzError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let version = r.get_u8()?;
    if version != VERSION {
        return Err(SzError::Corrupt(format!("unsupported version {version}")));
    }
    let dtype = match r.get_u8()? {
        0 => DType::F32,
        1 => DType::F64,
        other => return Err(SzError::Corrupt(format!("unknown dtype tag {other}"))),
    };
    let ndims = r.get_u8()? as usize;
    if ndims == 0 || ndims > 4 {
        return Err(SzError::Corrupt(format!("invalid dimensionality {ndims}")));
    }
    let mut axes = Vec::with_capacity(ndims);
    for _ in 0..ndims {
        let d = r.get_u64()? as usize;
        if d == 0 || d > (1 << 40) {
            return Err(SzError::Corrupt(format!("invalid axis length {d}")));
        }
        axes.push(d);
    }
    let dims = Dims::new(&axes);
    let timestep = r.get_u64()? as usize;
    let application = r.get_str()?;
    let field = r.get_str()?;
    let error_bound = r.get_f64()?;
    let block = r.get_u32()? as usize;
    let capacity = r.get_u32()?;
    if !(error_bound > 0.0 && error_bound.is_finite()) || block == 0 || capacity < 4 {
        return Err(SzError::Corrupt(
            "invalid codec parameters in header".into(),
        ));
    }

    let body = fraz_lossless::decompress(r.rest())?;
    let mut b = ByteReader::new(&body);
    let num_blocks = b.get_u64()? as usize;
    let flag_bytes = b.get_bytes((num_blocks + 7) / 8)?;
    let regression_flags: Vec<bool> = (0..num_blocks)
        .map(|i| flag_bytes[i / 8] & (1 << (i % 8)) != 0)
        .collect();
    let num_coeffs = b.get_u64()? as usize;
    if num_coeffs > num_blocks {
        return Err(SzError::Corrupt("more coefficient sets than blocks".into()));
    }
    let mut reg_coeffs = Vec::with_capacity(num_coeffs);
    for _ in 0..num_coeffs {
        let mut c = [0f32; 4];
        for v in c.iter_mut() {
            *v = b.get_f32()?;
        }
        reg_coeffs.push(c);
    }
    let quant_codes = huffman::decode_symbols(b.get_section()?)?;
    let num_unpred = b.get_u64()? as usize;
    if num_unpred > dims.len() {
        return Err(SzError::Corrupt(
            "unpredictable count exceeds grid size".into(),
        ));
    }
    let mut unpredictable = Vec::with_capacity(num_unpred);
    for _ in 0..num_unpred {
        unpredictable.push(match dtype {
            DType::F32 => b.get_f32()? as f64,
            DType::F64 => b.get_f64()?,
        });
    }

    let enc = EncodedBlocks {
        regression_flags,
        reg_coeffs,
        quant_codes,
        unpredictable,
    };
    let params = PipelineParams {
        error_bound,
        block_size: block,
        capacity,
    };
    let dims3 = pad_dims(&dims);
    let values = match dtype {
        DType::F32 => pipeline::decode(&enc, dims3, &params, |v| v as f32 as f64),
        DType::F64 => pipeline::decode(&enc, dims3, &params, |v| v),
    }
    .map_err(|e| SzError::Corrupt(e.to_string()))?;

    Ok(Dataset {
        application,
        field,
        timestep,
        dims,
        buffer: DataBuffer::from_f64(values, dtype),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wave_dataset(dims: Dims) -> Dataset {
        let n = dims.len();
        let values: Vec<f32> = (0..n)
            .map(|i| {
                let x = i as f32;
                (x * 0.013).sin() * 5.0 + (x * 0.0007).cos() * 20.0
            })
            .collect();
        Dataset::from_f32("test", "wave", 2, dims, values)
    }

    fn max_error(a: &Dataset, b: &Dataset) -> f64 {
        a.values_f64()
            .iter()
            .zip(b.values_f64().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn roundtrip_3d_respects_bound_and_metadata() {
        let original = wave_dataset(Dims::d3(12, 15, 17));
        for eb in [1e-1, 1e-3, 1e-5] {
            let compressed = compress(&original, &SzConfig::with_error_bound(eb)).unwrap();
            let restored = decompress(&compressed).unwrap();
            assert!(max_error(&original, &restored) <= eb, "eb={eb}");
            assert_eq!(restored.dims, original.dims);
            assert_eq!(restored.application, "test");
            assert_eq!(restored.field, "wave");
            assert_eq!(restored.timestep, 2);
            assert_eq!(restored.dtype(), DType::F32);
        }
    }

    #[test]
    fn roundtrip_1d_and_2d() {
        for dims in [Dims::d1(5000), Dims::d2(60, 83)] {
            let original = wave_dataset(dims);
            let compressed = compress(&original, &SzConfig::with_error_bound(1e-3)).unwrap();
            let restored = decompress(&compressed).unwrap();
            assert!(max_error(&original, &restored) <= 1e-3);
        }
    }

    #[test]
    fn roundtrip_f64_dataset() {
        let values: Vec<f64> = (0..3000).map(|i| (i as f64 * 0.01).sin() * 1e6).collect();
        let original = Dataset::from_f64("test", "wave64", 0, Dims::d1(3000), values);
        let compressed = compress(&original, &SzConfig::with_error_bound(1e-2)).unwrap();
        let restored = decompress(&compressed).unwrap();
        assert_eq!(restored.dtype(), DType::F64);
        assert!(max_error(&original, &restored) <= 1e-2);
    }

    #[test]
    fn smooth_data_compresses_well() {
        let original = wave_dataset(Dims::d3(16, 32, 32));
        let compressed = compress(&original, &SzConfig::with_error_bound(1e-2)).unwrap();
        let ratio = original.byte_size() as f64 / compressed.len() as f64;
        assert!(
            ratio > 8.0,
            "expected a high ratio on smooth data, got {ratio:.2}"
        );
    }

    #[test]
    fn larger_bound_gives_higher_ratio_on_smooth_data() {
        let original = wave_dataset(Dims::d3(16, 24, 24));
        let small = compress(&original, &SzConfig::with_error_bound(1e-6)).unwrap();
        let large = compress(&original, &SzConfig::with_error_bound(1e-1)).unwrap();
        assert!(large.len() < small.len());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let original = wave_dataset(Dims::d1(100));
        assert!(matches!(
            compress(&original, &SzConfig::with_error_bound(0.0)),
            Err(SzError::InvalidConfig(_))
        ));
        assert!(matches!(
            compress(&original, &SzConfig::with_error_bound(f64::NAN)),
            Err(SzError::InvalidConfig(_))
        ));
        let bad_block = SzConfig {
            block_size: Some(0),
            ..Default::default()
        };
        assert!(matches!(
            compress(&original, &bad_block),
            Err(SzError::InvalidConfig(_))
        ));
        let bad_capacity = SzConfig {
            quant_capacity: 2,
            ..Default::default()
        };
        assert!(matches!(
            compress(&original, &bad_capacity),
            Err(SzError::InvalidConfig(_))
        ));
    }

    #[test]
    fn corrupt_streams_are_rejected() {
        let original = wave_dataset(Dims::d2(20, 20));
        let mut compressed = compress(&original, &SzConfig::default()).unwrap();
        // Bad magic.
        let mut bad = compressed.clone();
        bad[0] ^= 0xff;
        assert!(matches!(decompress(&bad), Err(SzError::Corrupt(_))));
        // Truncation.
        compressed.truncate(compressed.len() / 2);
        assert!(decompress(&compressed).is_err());
        // Garbage.
        assert!(decompress(&[0u8; 3]).is_err());
    }

    #[test]
    fn custom_block_size_still_roundtrips() {
        let original = wave_dataset(Dims::d3(9, 9, 9));
        let config = SzConfig {
            error_bound: 1e-4,
            block_size: Some(4),
            quant_capacity: 1024,
        };
        let compressed = compress(&original, &config).unwrap();
        let restored = decompress(&compressed).unwrap();
        assert!(max_error(&original, &restored) <= 1e-4);
    }

    #[test]
    fn unicode_metadata_roundtrips() {
        let mut original = wave_dataset(Dims::d1(64));
        original.field = "QCLOUDf.log10-μ".to_string();
        let compressed = compress(&original, &SzConfig::default()).unwrap();
        assert_eq!(decompress(&compressed).unwrap().field, original.field);
    }
}
