//! The blockwise prediction + linear-scaling quantization pipeline.
//!
//! This is SZ's stages 1 and 2: the grid is split into non-overlapping
//! blocks, each block chooses between the Lorenzo predictor and a per-block
//! regression plane, every point's prediction error is quantized against the
//! absolute error bound, and points whose quantized reconstruction would
//! violate the bound are stored exactly ("unpredictable" points).
//!
//! Encoding and decoding traverse blocks (and points within a block) in the
//! same raster order, and the Lorenzo predictor only ever reads values that
//! the decoder will already have reconstructed, so the two sides stay
//! bit-identical.

use crate::predict::{lorenzo3, Dims3, RegressionPlane};

/// The quantization code reserved for unpredictable points.
pub const UNPREDICTABLE: u32 = 0;

/// Output of the prediction/quantization stage.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EncodedBlocks {
    /// One flag per block, `true` when the block uses the regression
    /// predictor instead of Lorenzo.
    pub regression_flags: Vec<bool>,
    /// `f32`-rounded plane coefficients for each regression block, in block
    /// order.
    pub reg_coeffs: Vec<[f32; 4]>,
    /// One quantization code per point, in traversal order; `UNPREDICTABLE`
    /// marks points stored exactly.
    pub quant_codes: Vec<u32>,
    /// Exactly-stored values for unpredictable points, in traversal order.
    pub unpredictable: Vec<f64>,
}

/// Parameters shared by [`encode`] and [`decode`].
#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// Absolute error bound (must be positive).
    pub error_bound: f64,
    /// Block edge length.
    pub block_size: usize,
    /// Number of quantization bins (SZ's `quantization_intervals`).
    pub capacity: u32,
}

impl PipelineParams {
    fn radius(&self) -> i64 {
        (self.capacity / 2) as i64
    }
}

/// Enumerate block origins of a padded 3-D grid in raster order.
fn block_origins(dims: Dims3, block: usize) -> Vec<[usize; 3]> {
    let mut origins = Vec::new();
    let mut z = 0;
    while z < dims[0] {
        let mut y = 0;
        while y < dims[1] {
            let mut x = 0;
            while x < dims[2] {
                origins.push([z, y, x]);
                x += block;
            }
            y += block;
        }
        z += block;
    }
    origins
}

/// Estimate which predictor fits a block better, mirroring SZ's sampling
/// heuristic: the Lorenzo estimate uses *original* neighbours (a cheap
/// stand-in for reconstructed ones), the regression estimate uses the fitted
/// plane; the predictor with the smaller total absolute error wins.
fn choose_regression(
    values: &[f64],
    dims: Dims3,
    origin: [usize; 3],
    extent: [usize; 3],
    plane: &RegressionPlane,
) -> bool {
    let mut lorenzo_err = 0.0;
    let mut regression_err = 0.0;
    for dz in 0..extent[0] {
        for dy in 0..extent[1] {
            for dx in 0..extent[2] {
                let (z, y, x) = (origin[0] + dz, origin[1] + dy, origin[2] + dx);
                let idx = (z * dims[1] + y) * dims[2] + x;
                let v = values[idx];
                lorenzo_err += (v - lorenzo3(values, dims, z, y, x)).abs();
                regression_err += (v - plane.predict(dz, dy, dx)).abs();
            }
        }
    }
    regression_err < lorenzo_err
}

/// Run prediction + quantization over the whole grid.
///
/// `finalize` rounds a reconstructed value to the precision it will have
/// after being stored back into the original buffer type (`f32` cast for
/// single-precision data); the error-bound check is performed on the
/// finalized value, so the bound holds end-to-end.
pub fn encode(
    values: &[f64],
    dims: Dims3,
    params: &PipelineParams,
    finalize: impl Fn(f64) -> f64,
) -> EncodedBlocks {
    assert!(params.error_bound > 0.0, "error bound must be positive");
    assert!(params.block_size > 0, "block size must be positive");
    assert!(params.capacity >= 4, "quantization capacity too small");
    let n = values.len();
    let eb = params.error_bound;
    let radius = params.radius();
    let mut out = EncodedBlocks {
        quant_codes: Vec::with_capacity(n),
        ..Default::default()
    };
    let mut recon = vec![0.0f64; n];

    for origin in block_origins(dims, params.block_size) {
        let extent = [
            params.block_size.min(dims[0] - origin[0]),
            params.block_size.min(dims[1] - origin[1]),
            params.block_size.min(dims[2] - origin[2]),
        ];
        // Fit the regression plane on the original values of the block.
        let mut points = Vec::with_capacity(extent[0] * extent[1] * extent[2]);
        for dz in 0..extent[0] {
            for dy in 0..extent[1] {
                for dx in 0..extent[2] {
                    let idx =
                        ((origin[0] + dz) * dims[1] + origin[1] + dy) * dims[2] + origin[2] + dx;
                    points.push(([dz, dy, dx], values[idx]));
                }
            }
        }
        let plane = RegressionPlane::fit(&points).quantized();
        let use_regression = choose_regression(values, dims, origin, extent, &plane);
        out.regression_flags.push(use_regression);
        if use_regression {
            out.reg_coeffs.push([
                plane.coeffs[0] as f32,
                plane.coeffs[1] as f32,
                plane.coeffs[2] as f32,
                plane.coeffs[3] as f32,
            ]);
        }

        for dz in 0..extent[0] {
            for dy in 0..extent[1] {
                for dx in 0..extent[2] {
                    let (z, y, x) = (origin[0] + dz, origin[1] + dy, origin[2] + dx);
                    let idx = (z * dims[1] + y) * dims[2] + x;
                    let orig = values[idx];
                    let pred = if use_regression {
                        plane.predict(dz, dy, dx)
                    } else {
                        lorenzo3(&recon, dims, z, y, x)
                    };
                    let diff = orig - pred;
                    let code_f = (diff / (2.0 * eb)).round();
                    let mut stored = false;
                    if code_f.abs() < radius as f64 && code_f.is_finite() {
                        let code = radius + code_f as i64;
                        if code > 0 && code < params.capacity as i64 {
                            let recon_val = finalize(pred + 2.0 * eb * (code - radius) as f64);
                            if (recon_val - orig).abs() <= eb && recon_val.is_finite() {
                                out.quant_codes.push(code as u32);
                                recon[idx] = recon_val;
                                stored = true;
                            }
                        }
                    }
                    if !stored {
                        out.quant_codes.push(UNPREDICTABLE);
                        out.unpredictable.push(finalize(orig));
                        recon[idx] = finalize(orig);
                    }
                }
            }
        }
    }
    out
}

/// Errors produced while decoding an [`EncodedBlocks`] stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer quantization codes than grid points.
    MissingCodes { expected: usize, actual: usize },
    /// Fewer regression flags / coefficients than blocks need.
    MissingRegressionData,
    /// Fewer exactly-stored values than `UNPREDICTABLE` codes.
    MissingUnpredictable,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::MissingCodes { expected, actual } => {
                write!(f, "expected {expected} quantization codes, found {actual}")
            }
            DecodeError::MissingRegressionData => write!(f, "regression metadata truncated"),
            DecodeError::MissingUnpredictable => write!(f, "unpredictable-value list truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Reconstruct the grid from an [`EncodedBlocks`] stream.
pub fn decode(
    enc: &EncodedBlocks,
    dims: Dims3,
    params: &PipelineParams,
    finalize: impl Fn(f64) -> f64,
) -> Result<Vec<f64>, DecodeError> {
    let n = dims[0] * dims[1] * dims[2];
    if enc.quant_codes.len() < n {
        return Err(DecodeError::MissingCodes {
            expected: n,
            actual: enc.quant_codes.len(),
        });
    }
    let eb = params.error_bound;
    let radius = params.radius();
    let mut recon = vec![0.0f64; n];
    let mut code_iter = enc.quant_codes.iter();
    let mut unpred_iter = enc.unpredictable.iter();
    let mut flag_iter = enc.regression_flags.iter();
    let mut coeff_iter = enc.reg_coeffs.iter();

    for origin in block_origins(dims, params.block_size) {
        let extent = [
            params.block_size.min(dims[0] - origin[0]),
            params.block_size.min(dims[1] - origin[1]),
            params.block_size.min(dims[2] - origin[2]),
        ];
        let use_regression = *flag_iter.next().ok_or(DecodeError::MissingRegressionData)?;
        let plane = if use_regression {
            let c = coeff_iter
                .next()
                .ok_or(DecodeError::MissingRegressionData)?;
            Some(RegressionPlane::from_coeffs([
                c[0] as f64,
                c[1] as f64,
                c[2] as f64,
                c[3] as f64,
            ]))
        } else {
            None
        };
        for dz in 0..extent[0] {
            for dy in 0..extent[1] {
                for dx in 0..extent[2] {
                    let (z, y, x) = (origin[0] + dz, origin[1] + dy, origin[2] + dx);
                    let idx = (z * dims[1] + y) * dims[2] + x;
                    let code = *code_iter.next().expect("length checked above");
                    recon[idx] = if code == UNPREDICTABLE {
                        *unpred_iter
                            .next()
                            .ok_or(DecodeError::MissingUnpredictable)?
                    } else {
                        let pred = match &plane {
                            Some(p) => p.predict(dz, dy, dx),
                            None => lorenzo3(&recon, dims, z, y, x),
                        };
                        finalize(pred + 2.0 * eb * (code as i64 - radius) as f64)
                    };
                }
            }
        }
    }
    Ok(recon)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(eb: f64) -> PipelineParams {
        PipelineParams {
            error_bound: eb,
            block_size: 6,
            capacity: 65536,
        }
    }

    fn smooth_grid(dims: Dims3) -> Vec<f64> {
        let mut v = Vec::with_capacity(dims[0] * dims[1] * dims[2]);
        for z in 0..dims[0] {
            for y in 0..dims[1] {
                for x in 0..dims[2] {
                    v.push(
                        (x as f64 * 0.2).sin() * 3.0
                            + (y as f64 * 0.15).cos() * 2.0
                            + z as f64 * 0.05,
                    );
                }
            }
        }
        v
    }

    fn check_roundtrip(values: &[f64], dims: Dims3, eb: f64) {
        let p = params(eb);
        let enc = encode(values, dims, &p, |v| v);
        let dec = decode(&enc, dims, &p, |v| v).unwrap();
        assert_eq!(dec.len(), values.len());
        for (i, (&a, &b)) in values.iter().zip(dec.iter()).enumerate() {
            assert!(
                (a - b).abs() <= eb,
                "point {i}: |{a} - {b}| = {} > {eb}",
                (a - b).abs()
            );
        }
    }

    #[test]
    fn roundtrip_3d_within_bound() {
        let dims = [10, 13, 17];
        check_roundtrip(&smooth_grid(dims), dims, 1e-2);
        check_roundtrip(&smooth_grid(dims), dims, 1e-5);
    }

    #[test]
    fn roundtrip_2d_and_1d() {
        let dims2 = [1, 25, 31];
        check_roundtrip(&smooth_grid(dims2), dims2, 1e-3);
        let dims1 = [1, 1, 500];
        check_roundtrip(&smooth_grid(dims1), dims1, 1e-3);
    }

    #[test]
    fn constant_field_uses_few_unpredictable_points() {
        let dims = [8, 8, 8];
        let values = vec![4.2f64; 512];
        let enc = encode(&values, dims, &params(1e-3), |v| v);
        assert!(enc.unpredictable.len() <= 1, "{}", enc.unpredictable.len());
        let dec = decode(&enc, dims, &params(1e-3), |v| v).unwrap();
        for v in dec {
            assert!((v - 4.2).abs() <= 1e-3);
        }
    }

    #[test]
    fn random_field_is_still_bounded() {
        // Pseudo-random, highly unpredictable data: many unpredictable
        // points, but the bound must still hold.
        let dims = [6, 7, 9];
        let mut state = 1u64;
        let values: Vec<f64> = (0..dims[0] * dims[1] * dims[2])
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                ((state >> 33) as f64 / 2e9) * 1e6 - 2.5e5
            })
            .collect();
        check_roundtrip(&values, dims, 1e-8);
    }

    #[test]
    fn f32_finalization_keeps_bound() {
        let dims = [5, 9, 11];
        let values: Vec<f64> = smooth_grid(dims)
            .into_iter()
            .map(|v| v as f32 as f64)
            .collect();
        let p = params(1e-4);
        let f32ize = |v: f64| v as f32 as f64;
        let enc = encode(&values, dims, &p, f32ize);
        let dec = decode(&enc, dims, &p, f32ize).unwrap();
        for (&a, &b) in values.iter().zip(dec.iter()) {
            assert!((a - b).abs() <= 1e-4);
            assert_eq!(b as f32 as f64, b, "reconstruction must be f32-exact");
        }
    }

    #[test]
    fn tighter_bound_means_more_codes_spread() {
        let dims = [8, 16, 16];
        let values = smooth_grid(dims);
        let loose = encode(&values, dims, &params(0.5), |v| v);
        let tight = encode(&values, dims, &params(1e-4), |v| v);
        let distinct = |codes: &[u32]| {
            let mut set: Vec<u32> = codes.to_vec();
            set.sort_unstable();
            set.dedup();
            set.len()
        };
        assert!(distinct(&tight.quant_codes) > distinct(&loose.quant_codes));
    }

    #[test]
    fn regression_blocks_appear_on_planar_data() {
        // A strongly linear field should favour the regression predictor in
        // at least some blocks.
        let dims = [12, 12, 12];
        let mut values = Vec::new();
        for z in 0..12 {
            for y in 0..12 {
                for x in 0..12 {
                    values.push(3.0 * z as f64 - 2.0 * y as f64 + 0.5 * x as f64);
                }
            }
        }
        let enc = encode(&values, dims, &params(1e-3), |v| v);
        assert_eq!(enc.regression_flags.len(), 8);
        assert_eq!(
            enc.reg_coeffs.len(),
            enc.regression_flags.iter().filter(|&&f| f).count()
        );
    }

    #[test]
    fn truncated_streams_are_errors() {
        let dims = [4, 4, 4];
        let values = smooth_grid(dims);
        let p = params(1e-3);
        let enc = encode(&values, dims, &p, |v| v);

        let mut missing_codes = enc.clone();
        missing_codes.quant_codes.pop();
        assert!(matches!(
            decode(&missing_codes, dims, &p, |v| v),
            Err(DecodeError::MissingCodes { .. })
        ));

        let mut missing_flags = enc.clone();
        missing_flags.regression_flags.clear();
        assert!(matches!(
            decode(&missing_flags, dims, &p, |v| v),
            Err(DecodeError::MissingRegressionData)
        ));
    }

    #[test]
    fn missing_unpredictable_is_an_error() {
        let dims = [1, 1, 64];
        let mut state = 7u64;
        let values: Vec<f64> = (0..64)
            .map(|_| {
                state = state
                    .wrapping_mul(2862933555777941757)
                    .wrapping_add(3037000493);
                (state >> 32) as f64
            })
            .collect();
        let p = params(1e-12);
        let mut enc = encode(&values, dims, &p, |v| v);
        assert!(!enc.unpredictable.is_empty());
        enc.unpredictable.clear();
        assert!(matches!(
            decode(&enc, dims, &p, |v| v),
            Err(DecodeError::MissingUnpredictable)
        ));
    }

    #[test]
    #[should_panic(expected = "error bound must be positive")]
    fn zero_bound_panics() {
        let _ = encode(&[1.0], [1, 1, 1], &params(0.0), |v| v);
    }

    #[test]
    fn block_origins_cover_everything() {
        let origins = block_origins([7, 5, 9], 4);
        assert_eq!(origins.len(), 2 * 2 * 3);
        assert_eq!(origins[0], [0, 0, 0]);
        assert!(origins.contains(&[4, 4, 8]));
    }
}
