//! Data predictors used by the SZ-like codec.
//!
//! SZ's compression model predicts every point from its already-processed
//! neighbourhood and entropy-codes only the quantized prediction error.  Two
//! predictors are provided, mirroring SZ 2.x's hybrid design:
//!
//! * [`lorenzo3`] — the 1-layer Lorenzo predictor, evaluated on *reconstructed*
//!   values so compressor and decompressor stay bit-identical,
//! * [`RegressionPlane`] — a per-block linear (hyper-plane) fit on the
//!   original values, whose four coefficients are stored in the stream.
//!
//! Everything operates on grids padded to three dimensions (leading axes of
//! length 1), which makes the 3-D Lorenzo stencil degrade gracefully to the
//! 2-D and 1-D forms because out-of-range neighbours contribute zero.

/// Padded 3-D grid description: `[d0, d1, d2]`, slowest first.
pub type Dims3 = [usize; 3];

/// Value of `grid[z][y][x]` with zero extension outside the domain.
#[inline]
fn sample(grid: &[f64], dims: Dims3, z: isize, y: isize, x: isize) -> f64 {
    if z < 0 || y < 0 || x < 0 {
        return 0.0;
    }
    let (z, y, x) = (z as usize, y as usize, x as usize);
    if z >= dims[0] || y >= dims[1] || x >= dims[2] {
        return 0.0;
    }
    grid[(z * dims[1] + y) * dims[2] + x]
}

/// 1-layer Lorenzo prediction of the point at `(z, y, x)` from its
/// already-reconstructed causal neighbourhood.
///
/// In 3-D this is the inclusion–exclusion sum over the seven causal corner
/// neighbours; with degenerate leading axes it reduces to the classic 2-D
/// (`a + b - c`) and 1-D (previous value) forms.
#[inline]
pub fn lorenzo3(recon: &[f64], dims: Dims3, z: usize, y: usize, x: usize) -> f64 {
    let (zi, yi, xi) = (z as isize, y as isize, x as isize);
    sample(recon, dims, zi - 1, yi, xi)
        + sample(recon, dims, zi, yi - 1, xi)
        + sample(recon, dims, zi, yi, xi - 1)
        - sample(recon, dims, zi - 1, yi - 1, xi)
        - sample(recon, dims, zi - 1, yi, xi - 1)
        - sample(recon, dims, zi, yi - 1, xi - 1)
        + sample(recon, dims, zi - 1, yi - 1, xi - 1)
}

/// A least-squares plane `v ≈ b0 + b1·dz + b2·dy + b3·dx` fitted over one
/// block (`dz/dy/dx` are coordinates relative to the block origin).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegressionPlane {
    /// Coefficients `[b0, b1(dz), b2(dy), b3(dx)]`.
    pub coeffs: [f64; 4],
}

impl RegressionPlane {
    /// Fit the plane to the original values of one block.
    ///
    /// `block` iterates the block's values in raster order together with
    /// their local `(dz, dy, dx)` coordinates.  A tiny ridge term keeps the
    /// normal equations solvable for degenerate blocks (single row/column).
    pub fn fit(points: &[([usize; 3], f64)]) -> Self {
        // Normal equations A^T A b = A^T v with A rows [1, dz, dy, dx].
        let mut ata = [[0.0f64; 4]; 4];
        let mut atv = [0.0f64; 4];
        for &(c, v) in points {
            let row = [1.0, c[0] as f64, c[1] as f64, c[2] as f64];
            for i in 0..4 {
                atv[i] += row[i] * v;
                for j in 0..4 {
                    ata[i][j] += row[i] * row[j];
                }
            }
        }
        let ridge = 1e-9 * points.len().max(1) as f64;
        for (i, row) in ata.iter_mut().enumerate() {
            row[i] += ridge;
        }
        let coeffs = solve4(ata, atv);
        Self { coeffs }
    }

    /// Reconstruct a plane from stored (f32-rounded) coefficients.
    pub fn from_coeffs(coeffs: [f64; 4]) -> Self {
        Self { coeffs }
    }

    /// Round the coefficients to `f32` precision, exactly as they will be
    /// stored in the stream, so compressor and decompressor predict from the
    /// same numbers.
    pub fn quantized(&self) -> Self {
        Self {
            coeffs: [
                self.coeffs[0] as f32 as f64,
                self.coeffs[1] as f32 as f64,
                self.coeffs[2] as f32 as f64,
                self.coeffs[3] as f32 as f64,
            ],
        }
    }

    /// Predict the value at local coordinates `(dz, dy, dx)`.
    #[inline]
    pub fn predict(&self, dz: usize, dy: usize, dx: usize) -> f64 {
        self.coeffs[0]
            + self.coeffs[1] * dz as f64
            + self.coeffs[2] * dy as f64
            + self.coeffs[3] * dx as f64
    }
}

/// Solve a 4x4 linear system with partial pivoting.  Singular (or nearly
/// singular) pivots yield zero for the remaining unknowns, which simply
/// disables the corresponding term of the plane.
fn solve4(mut a: [[f64; 4]; 4], mut b: [f64; 4]) -> [f64; 4] {
    let n = 4;
    for col in 0..n {
        // Pivot.
        let mut pivot = col;
        for row in col + 1..n {
            if a[row][col].abs() > a[pivot][col].abs() {
                pivot = row;
            }
        }
        if a[pivot][col].abs() < 1e-30 {
            continue;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0f64; 4];
    for col in (0..n).rev() {
        if a[col][col].abs() < 1e-30 {
            x[col] = 0.0;
            continue;
        }
        let mut sum = b[col];
        for k in col + 1..n {
            sum -= a[col][k] * x[k];
        }
        x[col] = sum / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lorenzo_1d_is_previous_value() {
        let dims = [1, 1, 5];
        let recon = vec![1.0, 2.0, 3.0, 0.0, 0.0];
        assert_eq!(lorenzo3(&recon, dims, 0, 0, 0), 0.0);
        assert_eq!(lorenzo3(&recon, dims, 0, 0, 3), 3.0);
    }

    #[test]
    fn lorenzo_2d_is_a_plus_b_minus_c() {
        let dims = [1, 2, 3];
        // grid: [[1, 2, 3], [4, ?, ?]]
        let recon = vec![1.0, 2.0, 3.0, 4.0, 0.0, 0.0];
        // predict (y=1, x=1): left(4) + up(2) - diag(1) = 5.
        assert_eq!(lorenzo3(&recon, dims, 0, 1, 1), 5.0);
    }

    #[test]
    fn lorenzo_3d_is_exact_for_linear_fields() {
        // A perfectly linear field is predicted exactly by the Lorenzo
        // stencil (away from the boundary).
        let dims = [4, 4, 4];
        let f =
            |z: usize, y: usize, x: usize| 2.0 * z as f64 - 3.0 * y as f64 + 0.5 * x as f64 + 7.0;
        let mut grid = vec![0.0; 64];
        for z in 0..4 {
            for y in 0..4 {
                for x in 0..4 {
                    grid[(z * 4 + y) * 4 + x] = f(z, y, x);
                }
            }
        }
        for z in 1..4 {
            for y in 1..4 {
                for x in 1..4 {
                    let pred = lorenzo3(&grid, dims, z, y, x);
                    assert!((pred - f(z, y, x)).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn regression_recovers_exact_plane() {
        let truth = [5.0, 1.5, -2.0, 0.25];
        let mut points = Vec::new();
        for dz in 0..6 {
            for dy in 0..6 {
                for dx in 0..6 {
                    let v = truth[0]
                        + truth[1] * dz as f64
                        + truth[2] * dy as f64
                        + truth[3] * dx as f64;
                    points.push(([dz, dy, dx], v));
                }
            }
        }
        let plane = RegressionPlane::fit(&points);
        for (c, t) in plane.coeffs.iter().zip(truth.iter()) {
            assert!((c - t).abs() < 1e-6, "{:?} vs {:?}", plane.coeffs, truth);
        }
        assert!((plane.predict(2, 3, 4) - (5.0 + 3.0 - 6.0 + 1.0)).abs() < 1e-6);
    }

    #[test]
    fn regression_handles_degenerate_blocks() {
        // A single row (1-D block): dy and dz columns are constant zero.
        let points: Vec<([usize; 3], f64)> = (0..8)
            .map(|dx| ([0, 0, dx], 3.0 + 2.0 * dx as f64))
            .collect();
        let plane = RegressionPlane::fit(&points);
        assert!((plane.predict(0, 0, 5) - 13.0).abs() < 1e-6);
        // A single point.
        let plane = RegressionPlane::fit(&[([0, 0, 0], 42.0)]);
        assert!((plane.predict(0, 0, 0) - 42.0).abs() < 1e-3);
    }

    #[test]
    fn quantized_coeffs_match_f32_storage() {
        let plane = RegressionPlane::fit(&[
            ([0, 0, 0], 1.000000123),
            ([0, 0, 1], 2.000000456),
            ([0, 1, 0], 3.1),
            ([1, 0, 0], 4.7),
        ]);
        let q = plane.quantized();
        for (orig, stored) in plane.coeffs.iter().zip(q.coeffs.iter()) {
            assert_eq!(*stored, *orig as f32 as f64);
        }
    }

    #[test]
    fn solve4_on_identity() {
        let a = [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ];
        assert_eq!(solve4(a, [1.0, 2.0, 3.0, 4.0]), [1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn solve4_singular_does_not_blow_up() {
        let a = [[0.0; 4]; 4];
        let x = solve4(a, [1.0, 2.0, 3.0, 4.0]);
        assert!(x.iter().all(|v| v.is_finite()));
    }
}
