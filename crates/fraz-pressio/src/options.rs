//! A small typed option system, mirroring libpressio's string-keyed options.
//!
//! Libpressio abstracts compressor-specific knobs behind a uniform
//! `name -> value` interface so generic tools (like FRaZ) can configure any
//! backend without compile-time knowledge of it.  This module provides the
//! same mechanism: an [`Options`] bag of typed values with conversion-checked
//! getters.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single option value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptionValue {
    /// Floating-point option (error bounds, rates, tolerances).
    F64(f64),
    /// Unsigned integer option (block sizes, bin counts).
    U64(u64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string (mode names, norm selection).
    Str(String),
}

impl fmt::Display for OptionValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionValue::F64(v) => write!(f, "{v}"),
            OptionValue::U64(v) => write!(f, "{v}"),
            OptionValue::Bool(v) => write!(f, "{v}"),
            OptionValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<f64> for OptionValue {
    fn from(v: f64) -> Self {
        OptionValue::F64(v)
    }
}
impl From<u64> for OptionValue {
    fn from(v: u64) -> Self {
        OptionValue::U64(v)
    }
}
impl From<bool> for OptionValue {
    fn from(v: bool) -> Self {
        OptionValue::Bool(v)
    }
}
impl From<&str> for OptionValue {
    fn from(v: &str) -> Self {
        OptionValue::Str(v.to_string())
    }
}
impl From<String> for OptionValue {
    fn from(v: String) -> Self {
        OptionValue::Str(v)
    }
}

/// A bag of named options.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Options {
    values: BTreeMap<String, OptionValue>,
}

impl Options {
    /// An empty option set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or replace) an option, builder style.
    pub fn with(mut self, key: &str, value: impl Into<OptionValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Set (or replace) an option.
    pub fn set(&mut self, key: &str, value: impl Into<OptionValue>) {
        self.values.insert(key.to_string(), value.into());
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&OptionValue> {
        self.values.get(key)
    }

    /// Number of options set.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no options are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &OptionValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Get a floating-point option, converting from integer if needed.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.values.get(key)? {
            OptionValue::F64(v) => Some(*v),
            OptionValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Get an unsigned integer option.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.values.get(key)? {
            OptionValue::U64(v) => Some(*v),
            OptionValue::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Get a boolean option.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.values.get(key)? {
            OptionValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Get a string option.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.values.get(key)? {
            OptionValue::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let opts = Options::new()
            .with("sz:error_bound", 1e-3)
            .with("sz:block_size", 6u64)
            .with("zfp:mode", "accuracy")
            .with("verbose", true);
        assert_eq!(opts.get_f64("sz:error_bound"), Some(1e-3));
        assert_eq!(opts.get_u64("sz:block_size"), Some(6));
        assert_eq!(opts.get_str("zfp:mode"), Some("accuracy"));
        assert_eq!(opts.get_bool("verbose"), Some(true));
        assert_eq!(opts.len(), 4);
        assert!(!opts.is_empty());
    }

    #[test]
    fn missing_and_mistyped_options() {
        let opts = Options::new().with("a", 1.5);
        assert_eq!(opts.get_f64("missing"), None);
        assert_eq!(opts.get_str("a"), None);
        assert_eq!(opts.get_bool("a"), None);
        // Integral floats convert to u64, fractional ones do not.
        assert_eq!(Options::new().with("n", 4.0).get_u64("n"), Some(4));
        assert_eq!(Options::new().with("n", 4.5).get_u64("n"), None);
        // Integers widen to f64.
        assert_eq!(Options::new().with("n", 7u64).get_f64("n"), Some(7.0));
    }

    #[test]
    fn overwrite_and_iterate() {
        let mut opts = Options::new();
        opts.set("k", 1.0);
        opts.set("k", 2.0);
        assert_eq!(opts.get_f64("k"), Some(2.0));
        opts.set("a", "x");
        let keys: Vec<&str> = opts.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "k"]);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(OptionValue::from(3.5).to_string(), "3.5");
        assert_eq!(OptionValue::from("abs").to_string(), "abs");
        assert_eq!(OptionValue::from(true).to_string(), "true");
        assert_eq!(OptionValue::from(9u64).to_string(), "9");
    }
}
