//! A small typed option system, mirroring libpressio's string-keyed options.
//!
//! Libpressio abstracts compressor-specific knobs behind a uniform
//! `name -> value` interface so generic tools (like FRaZ) can configure any
//! backend without compile-time knowledge of it.  This module provides the
//! same mechanism: an [`Options`] bag of typed values with conversion-checked
//! getters.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A single option value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum OptionValue {
    /// Floating-point option (error bounds, rates, tolerances).
    F64(f64),
    /// Unsigned integer option (block sizes, bin counts).
    U64(u64),
    /// Boolean flag.
    Bool(bool),
    /// Free-form string (mode names, norm selection).
    Str(String),
}

/// The type of an [`OptionValue`], without a value attached.
///
/// Option schemas ([`OptionDescriptor`](crate::OptionDescriptor)) declare
/// the kind they expect, and registry validation compares kinds instead of
/// silently dropping mistyped values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OptionKind {
    /// Floating-point option.
    F64,
    /// Unsigned integer option.
    U64,
    /// Boolean flag.
    Bool,
    /// Free-form string.
    Str,
}

impl OptionKind {
    /// True when a value of this runtime type satisfies an option declared
    /// with this kind.  The accepted conversions mirror the typed getters:
    /// integers widen into `F64` options, and integral non-negative floats
    /// narrow into `U64` options.
    pub fn accepts(&self, value: &OptionValue) -> bool {
        match (self, value) {
            (OptionKind::F64, OptionValue::F64(_) | OptionValue::U64(_)) => true,
            (OptionKind::U64, OptionValue::U64(_)) => true,
            (OptionKind::U64, OptionValue::F64(v)) => v.fract() == 0.0 && *v >= 0.0,
            (OptionKind::Bool, OptionValue::Bool(_)) => true,
            (OptionKind::Str, OptionValue::Str(_)) => true,
            _ => false,
        }
    }
}

impl fmt::Display for OptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            OptionKind::F64 => "f64",
            OptionKind::U64 => "u64",
            OptionKind::Bool => "bool",
            OptionKind::Str => "string",
        })
    }
}

impl OptionValue {
    /// The runtime type of this value.
    pub fn kind(&self) -> OptionKind {
        match self {
            OptionValue::F64(_) => OptionKind::F64,
            OptionValue::U64(_) => OptionKind::U64,
            OptionValue::Bool(_) => OptionKind::Bool,
            OptionValue::Str(_) => OptionKind::Str,
        }
    }

    /// Numeric view of the value, when it has one (used for range checks).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            OptionValue::F64(v) => Some(*v),
            OptionValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }
}

impl fmt::Display for OptionValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OptionValue::F64(v) => write!(f, "{v}"),
            OptionValue::U64(v) => write!(f, "{v}"),
            OptionValue::Bool(v) => write!(f, "{v}"),
            OptionValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<f64> for OptionValue {
    fn from(v: f64) -> Self {
        OptionValue::F64(v)
    }
}
impl From<u64> for OptionValue {
    fn from(v: u64) -> Self {
        OptionValue::U64(v)
    }
}
impl From<bool> for OptionValue {
    fn from(v: bool) -> Self {
        OptionValue::Bool(v)
    }
}
impl From<&str> for OptionValue {
    fn from(v: &str) -> Self {
        OptionValue::Str(v.to_string())
    }
}
impl From<String> for OptionValue {
    fn from(v: String) -> Self {
        OptionValue::Str(v)
    }
}

/// A bag of named options.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Options {
    values: BTreeMap<String, OptionValue>,
}

impl Options {
    /// An empty option set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set (or replace) an option, builder style.
    pub fn with(mut self, key: &str, value: impl Into<OptionValue>) -> Self {
        self.set(key, value);
        self
    }

    /// Set (or replace) an option.
    pub fn set(&mut self, key: &str, value: impl Into<OptionValue>) {
        self.values.insert(key.to_string(), value.into());
    }

    /// Raw lookup.
    pub fn get(&self, key: &str) -> Option<&OptionValue> {
        self.values.get(key)
    }

    /// True when `key` is set.
    pub fn contains_key(&self, key: &str) -> bool {
        self.values.contains_key(key)
    }

    /// Remove an option, returning its previous value.
    pub fn remove(&mut self, key: &str) -> Option<OptionValue> {
        self.values.remove(key)
    }

    /// The set keys, in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }

    /// Overlay `other` on top of `self`: every option set in `other` is set
    /// here, replacing existing values (libpressio's `options_merge`).
    pub fn merge(&mut self, other: &Options) {
        for (key, value) in other.iter() {
            self.set(key, value.clone());
        }
    }

    /// Keys set in `self` whose values differ from (or are absent in)
    /// `other`.  The comparison is one-sided — keys present only in
    /// `other` are not reported — which is the shape introspection wants:
    /// "which of my options deviate from the codec's declared defaults"
    /// (compare against `CodecDescriptor::default_options()`, as the
    /// quickstart example does).
    pub fn diff<'a>(&'a self, other: &Options) -> Vec<&'a str> {
        self.iter()
            .filter(|(key, value)| other.get(key) != Some(*value))
            .map(|(key, _)| key)
            .collect()
    }

    /// Number of options set.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no options are set.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterate over `(key, value)` pairs in sorted key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &OptionValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Canonical one-line signature of this bag: `key=value` pairs joined by
    /// `,` in sorted key order (empty string for an empty bag).  Two bags
    /// compare equal iff their signatures do, so the signature is usable as
    /// a cache-key component (the tuning cache keys on it).
    pub fn signature(&self) -> String {
        let mut out = String::new();
        for (key, value) in self.iter() {
            if !out.is_empty() {
                out.push(',');
            }
            out.push_str(key);
            out.push('=');
            out.push_str(&value.to_string());
        }
        out
    }

    /// Get a floating-point option, converting from integer if needed.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.values.get(key)? {
            OptionValue::F64(v) => Some(*v),
            OptionValue::U64(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Get an unsigned integer option.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.values.get(key)? {
            OptionValue::U64(v) => Some(*v),
            OptionValue::F64(v) if v.fract() == 0.0 && *v >= 0.0 => Some(*v as u64),
            _ => None,
        }
    }

    /// Get a boolean option.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.values.get(key)? {
            OptionValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Get a string option.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.values.get(key)? {
            OptionValue::Str(v) => Some(v.as_str()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let opts = Options::new()
            .with("sz:error_bound", 1e-3)
            .with("sz:block_size", 6u64)
            .with("zfp:mode", "accuracy")
            .with("verbose", true);
        assert_eq!(opts.get_f64("sz:error_bound"), Some(1e-3));
        assert_eq!(opts.get_u64("sz:block_size"), Some(6));
        assert_eq!(opts.get_str("zfp:mode"), Some("accuracy"));
        assert_eq!(opts.get_bool("verbose"), Some(true));
        assert_eq!(opts.len(), 4);
        assert!(!opts.is_empty());
    }

    #[test]
    fn missing_and_mistyped_options() {
        let opts = Options::new().with("a", 1.5);
        assert_eq!(opts.get_f64("missing"), None);
        assert_eq!(opts.get_str("a"), None);
        assert_eq!(opts.get_bool("a"), None);
        // Integral floats convert to u64, fractional ones do not.
        assert_eq!(Options::new().with("n", 4.0).get_u64("n"), Some(4));
        assert_eq!(Options::new().with("n", 4.5).get_u64("n"), None);
        // Integers widen to f64.
        assert_eq!(Options::new().with("n", 7u64).get_f64("n"), Some(7.0));
    }

    #[test]
    fn overwrite_and_iterate() {
        let mut opts = Options::new();
        opts.set("k", 1.0);
        opts.set("k", 2.0);
        assert_eq!(opts.get_f64("k"), Some(2.0));
        opts.set("a", "x");
        let keys: Vec<&str> = opts.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["a", "k"]);
    }

    #[test]
    fn kinds_and_accepted_conversions() {
        assert_eq!(OptionValue::from(1.5).kind(), OptionKind::F64);
        assert_eq!(OptionValue::from(3u64).kind(), OptionKind::U64);
        assert_eq!(OptionValue::from(true).kind(), OptionKind::Bool);
        assert_eq!(OptionValue::from("x").kind(), OptionKind::Str);
        // Widening/narrowing matches the typed getters.
        assert!(OptionKind::F64.accepts(&OptionValue::U64(3)));
        assert!(OptionKind::U64.accepts(&OptionValue::F64(4.0)));
        assert!(!OptionKind::U64.accepts(&OptionValue::F64(4.5)));
        assert!(!OptionKind::U64.accepts(&OptionValue::F64(-1.0)));
        assert!(!OptionKind::Bool.accepts(&OptionValue::Str("true".into())));
        assert_eq!(OptionKind::Str.to_string(), "string");
        assert_eq!(OptionValue::from(3u64).as_f64(), Some(3.0));
        assert_eq!(OptionValue::from("x").as_f64(), None);
    }

    #[test]
    fn keys_contains_remove() {
        let mut opts = Options::new().with("b", 1u64).with("a", 2u64);
        assert_eq!(opts.keys().collect::<Vec<_>>(), vec!["a", "b"]);
        assert!(opts.contains_key("a"));
        assert_eq!(opts.remove("a"), Some(OptionValue::U64(2)));
        assert!(!opts.contains_key("a"));
        assert_eq!(opts.remove("a"), None);
    }

    #[test]
    fn signature_is_canonical_and_order_independent() {
        assert_eq!(Options::new().signature(), "");
        let a = Options::new().with("sz:block_size", 6u64).with("mode", "x");
        let b = Options::new().with("mode", "x").with("sz:block_size", 6u64);
        // Insertion order does not matter — the signature is sorted.
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.signature(), "mode=x,sz:block_size=6");
        // Any differing value produces a different signature.
        let c = Options::new().with("mode", "y").with("sz:block_size", 6u64);
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn merge_overlays_and_diff_reports_edits() {
        let mut base = Options::new().with("keep", 1u64).with("replace", 1u64);
        let overlay = Options::new().with("replace", 2u64).with("add", true);
        base.merge(&overlay);
        assert_eq!(base.get_u64("keep"), Some(1));
        assert_eq!(base.get_u64("replace"), Some(2));
        assert_eq!(base.get_bool("add"), Some(true));

        let defaults = Options::new().with("keep", 1u64);
        assert_eq!(base.diff(&defaults), vec!["add", "replace"]);
        assert!(defaults.diff(&defaults).is_empty());
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(OptionValue::from(3.5).to_string(), "3.5");
        assert_eq!(OptionValue::from("abs").to_string(), "abs");
        assert_eq!(OptionValue::from(true).to_string(), "true");
        assert_eq!(OptionValue::from(9u64).to_string(), "9");
    }
}
