//! Codec metadata: what a backend is called, what its scalar parameter
//! means, which grids it accepts, and which options it understands.
//!
//! Libpressio makes compressors *introspectable*: a generic tool can ask a
//! plugin for its option schema and validate a configuration before
//! constructing anything.  [`CodecDescriptor`] and [`OptionDescriptor`] play
//! that role here.  Every entry in the
//! [`Registry`](crate::registry::Registry) pairs a factory closure with a
//! descriptor, and [`Registry::build`](crate::registry::Registry::build)
//! validates the caller's [`Options`] against the descriptor — unknown keys
//! and type mismatches are errors, not silence.
//!
//! # Describing an out-of-tree codec
//!
//! ```
//! use fraz_pressio::{BoundKind, CodecDescriptor, DimRange, OptionDescriptor};
//! use fraz_pressio::options::{OptionKind, Options};
//!
//! let descriptor = CodecDescriptor::new("decimate", BoundKind::AbsoluteError)
//!     .with_alias("downsample")
//!     .with_dims(DimRange::new(1, 3))
//!     .with_summary("keeps every k-th value; k derived from the bound")
//!     .with_option(
//!         OptionDescriptor::new("decimate:max_stride", OptionKind::U64)
//!             .with_default(16u64)
//!             .with_range(1.0, 64.0)
//!             .with_doc("largest decimation stride the codec will use"),
//!     );
//!
//! // The descriptor validates configurations without building anything.
//! assert!(descriptor
//!     .validate_options(&Options::new().with("decimate:max_stride", 8u64))
//!     .is_ok());
//! let err = descriptor
//!     .validate_options(&Options::new().with("decimate:max_strude", 8u64))
//!     .unwrap_err();
//! assert!(err.to_string().contains("decimate:max_stride")); // did you mean?
//! ```

use std::fmt;

use fraz_data::Dims;

use crate::options::{OptionKind, OptionValue, Options};
use crate::registry::RegistryError;

/// What a backend's scalar "error bound" parameter actually controls.
///
/// FRaZ only needs the parameter to be a positive scalar, but logs, tables
/// and capability checks need to know its meaning; libpressio encodes this
/// as free-form strings, which cannot be matched on reliably.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoundKind {
    /// Absolute pointwise error bound (SZ-style `|x - x'| <= e`).
    AbsoluteError,
    /// Accuracy tolerance (ZFP's fixed-accuracy mode; also an absolute
    /// pointwise guarantee, but tuned per transform block).
    AccuracyTolerance,
    /// Bits-per-value rate: the parameter sets the *size*, not the error.
    BitsPerValue,
    /// ∞-norm (maximum error) bound over the multilevel decomposition.
    InfinityNorm,
    /// L2-norm (RMS error) bound; pointwise errors may exceed it.
    L2Norm,
}

impl BoundKind {
    /// Human-readable label (what `Compressor::bound_kind` used to return).
    pub fn label(&self) -> &'static str {
        match self {
            BoundKind::AbsoluteError => "absolute error bound",
            BoundKind::AccuracyTolerance => "accuracy tolerance",
            BoundKind::BitsPerValue => "bits per value",
            BoundKind::InfinityNorm => "infinity-norm bound",
            BoundKind::L2Norm => "L2-norm bound",
        }
    }

    /// True when the parameter bounds a reconstruction *error*, making the
    /// backend a valid FRaZ search target; false for fixed-rate parameters
    /// where the ratio is set directly and searching would be circular.
    pub fn is_error_bounded(&self) -> bool {
        !matches!(self, BoundKind::BitsPerValue)
    }
}

impl fmt::Display for BoundKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Closed-form PSNR ↔ error-bound model for codecs whose quantizer error is
/// (approximately) uniform on `[-e, e]` — the Fixed-PSNR result of Tao, Di
/// et al. for SZ-style predictive quantization.
///
/// Under that assumption the RMSE of a compressed field is `e/√3`, so with
/// value range `R`:
///
/// ```text
/// PSNR = 20·log10(R / e) + 10·log10(3)   (offset ≈ 4.77 dB)
/// ```
///
/// which inverts to the analytic first guess `e = R · 10^((offset − PSNR)/20)`.
/// Codecs opt in through [`CodecDescriptor::with_psnr_model`]; transform
/// codecs (ZFP, MGARD), whose error distribution is not uniform, leave the
/// field `None` and quality searches fall back to bracketing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PsnrBoundModel {
    /// Additive PSNR offset in dB over the naive `20·log10(R/e)` estimate.
    pub offset_db: f64,
}

impl PsnrBoundModel {
    /// The uniform-quantization model (`offset = 10·log10 3 ≈ 4.77 dB`).
    pub fn uniform_quantization() -> Self {
        Self {
            offset_db: 10.0 * 3f64.log10(),
        }
    }

    /// The error bound predicted to achieve `psnr_db` on data spanning
    /// `value_range`; `None` when either input is degenerate.
    pub fn bound_for_psnr(&self, value_range: f64, psnr_db: f64) -> Option<f64> {
        if !(value_range.is_finite() && value_range > 0.0 && psnr_db.is_finite()) {
            return None;
        }
        let bound = value_range * 10f64.powf((self.offset_db - psnr_db) / 20.0);
        (bound.is_finite() && bound > 0.0).then_some(bound)
    }

    /// The PSNR predicted for error bound `bound` on data spanning
    /// `value_range` — the forward direction, used by telemetry.
    pub fn psnr_for_bound(&self, value_range: f64, bound: f64) -> Option<f64> {
        if !(value_range.is_finite() && value_range > 0.0 && bound.is_finite() && bound > 0.0) {
            return None;
        }
        Some(20.0 * (value_range / bound).log10() + self.offset_db)
    }
}

/// The contiguous range of grid dimensionalities a codec accepts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimRange {
    /// Smallest accepted number of axes (inclusive).
    pub min: usize,
    /// Largest accepted number of axes (inclusive).
    pub max: usize,
}

impl DimRange {
    /// Accept every dimensionality the workspace supports (1-D to 4-D).
    pub fn any() -> Self {
        Self { min: 1, max: 4 }
    }

    /// Accept `min`-D through `max`-D grids (inclusive).
    ///
    /// # Panics
    /// Panics if `min` is zero or greater than `max`.
    pub fn new(min: usize, max: usize) -> Self {
        assert!(
            min >= 1 && min <= max,
            "bad dimensionality range {min}..={max}"
        );
        Self { min, max }
    }

    /// True when the given grid shape falls inside the range.
    pub fn supports(&self, dims: &Dims) -> bool {
        (self.min..=self.max).contains(&dims.ndims())
    }
}

impl fmt::Display for DimRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.min == self.max {
            write!(f, "{}-D", self.min)
        } else {
            write!(f, "{}-D to {}-D", self.min, self.max)
        }
    }
}

/// Schema of one option a codec understands: key, type, default, valid
/// range and documentation.
#[derive(Debug, Clone, PartialEq)]
pub struct OptionDescriptor {
    /// Namespaced option key (e.g. `"sz:block_size"`).
    pub key: String,
    /// Expected value type; see [`OptionKind::accepts`] for the conversions
    /// validation tolerates.
    pub kind: OptionKind,
    /// Default used when the option is absent (informational; factories
    /// apply their own defaults).
    pub default: Option<OptionValue>,
    /// Inclusive valid range for numeric options.
    pub range: Option<(f64, f64)>,
    /// One-line description shown by introspection tools.
    pub doc: String,
}

impl OptionDescriptor {
    /// A descriptor for `key` expecting values of `kind`.
    pub fn new(key: &str, kind: OptionKind) -> Self {
        Self {
            key: key.to_string(),
            kind,
            default: None,
            range: None,
            doc: String::new(),
        }
    }

    /// Attach the default value (builder style).
    pub fn with_default(mut self, default: impl Into<OptionValue>) -> Self {
        self.default = Some(default.into());
        self
    }

    /// Attach an inclusive numeric range (builder style).
    pub fn with_range(mut self, lower: f64, upper: f64) -> Self {
        self.range = Some((lower, upper));
        self
    }

    /// Attach the doc line (builder style).
    pub fn with_doc(mut self, doc: &str) -> Self {
        self.doc = doc.to_string();
        self
    }

    /// Check one value against this descriptor's type and range.
    fn validate(&self, codec: &str, value: &OptionValue) -> Result<(), RegistryError> {
        if !self.kind.accepts(value) {
            return Err(RegistryError::TypeMismatch {
                codec: codec.to_string(),
                key: self.key.clone(),
                expected: self.kind,
                actual: value.kind(),
            });
        }
        if let Some((lower, upper)) = self.range {
            if let Some(v) = value.as_f64() {
                if v < lower || v > upper {
                    return Err(RegistryError::OutOfRange {
                        codec: codec.to_string(),
                        key: self.key.clone(),
                        value: v,
                        range: (lower, upper),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Full metadata for one registered codec.
///
/// See the [module docs](self) for a registration example; the
/// [`Registry`](crate::registry::Registry) docs show the factory side.
#[derive(Debug, Clone, PartialEq)]
pub struct CodecDescriptor {
    /// Canonical name used for lookup (e.g. `"sz"`).
    pub name: String,
    /// Alternative lookup names (e.g. `"zfp-accuracy"` for `"zfp"`).
    pub aliases: Vec<String>,
    /// What the scalar parameter controls.
    pub bound_kind: BoundKind,
    /// True when the codec is a valid FRaZ search target (defaults to
    /// [`BoundKind::is_error_bounded`]).
    pub error_bounded: bool,
    /// Accepted grid dimensionalities.
    pub dims: DimRange,
    /// Schema of every option the codec's factory reads.
    pub options: Vec<OptionDescriptor>,
    /// One-line description shown by introspection tools.
    pub summary: String,
    /// Closed-form PSNR↔bound model, for codecs whose quantization error is
    /// near-uniform (`None` = no analytic seeding; search by bracketing).
    pub psnr_model: Option<PsnrBoundModel>,
}

impl CodecDescriptor {
    /// A descriptor for `name` whose parameter is a `bound_kind`; accepts
    /// every dimensionality and no options until the builder methods say
    /// otherwise.
    pub fn new(name: &str, bound_kind: BoundKind) -> Self {
        Self {
            name: name.to_string(),
            aliases: Vec::new(),
            bound_kind,
            error_bounded: bound_kind.is_error_bounded(),
            dims: DimRange::any(),
            options: Vec::new(),
            summary: String::new(),
            psnr_model: None,
        }
    }

    /// Declare a closed-form PSNR↔bound model (builder style).
    pub fn with_psnr_model(mut self, model: PsnrBoundModel) -> Self {
        self.psnr_model = Some(model);
        self
    }

    /// Add a lookup alias (builder style).
    pub fn with_alias(mut self, alias: &str) -> Self {
        self.aliases.push(alias.to_string());
        self
    }

    /// Override the error-bounded capability flag (builder style).
    pub fn with_error_bounded(mut self, error_bounded: bool) -> Self {
        self.error_bounded = error_bounded;
        self
    }

    /// Restrict the accepted dimensionalities (builder style).
    pub fn with_dims(mut self, dims: DimRange) -> Self {
        self.dims = dims;
        self
    }

    /// Declare an option the factory reads (builder style).
    pub fn with_option(mut self, option: OptionDescriptor) -> Self {
        self.options.push(option);
        self
    }

    /// Attach the summary line (builder style).
    pub fn with_summary(mut self, summary: &str) -> Self {
        self.summary = summary.to_string();
        self
    }

    /// Every name this codec answers to: the canonical name, then aliases.
    pub fn all_names(&self) -> impl Iterator<Item = &str> {
        std::iter::once(self.name.as_str()).chain(self.aliases.iter().map(String::as_str))
    }

    /// Look up the schema of one option key.
    pub fn option(&self, key: &str) -> Option<&OptionDescriptor> {
        self.options.iter().find(|o| o.key == key)
    }

    /// Validate an options bag against this codec's schema.
    ///
    /// Every key must name a declared option (unknown keys fail with a
    /// nearest-key suggestion) and every value must satisfy the declared
    /// type and range.  An empty bag always validates.
    pub fn validate_options(&self, options: &Options) -> Result<(), RegistryError> {
        for (key, value) in options.iter() {
            match self.option(key) {
                Some(descriptor) => descriptor.validate(&self.name, value)?,
                None => {
                    return Err(RegistryError::UnknownOption {
                        codec: self.name.clone(),
                        key: key.to_string(),
                        suggestion: closest_match(key, self.options.iter().map(|o| o.key.as_str())),
                    })
                }
            }
        }
        Ok(())
    }

    /// The default configuration implied by the option schema (only options
    /// that declare a default appear).
    pub fn default_options(&self) -> Options {
        let mut options = Options::new();
        for o in &self.options {
            if let Some(default) = &o.default {
                options.set(&o.key, default.clone());
            }
        }
        options
    }
}

impl fmt::Display for CodecDescriptor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}, {}, {})",
            self.name,
            self.bound_kind,
            self.dims,
            if self.error_bounded {
                "error-bounded"
            } else {
                "fixed-rate"
            }
        )
    }
}

/// Levenshtein edit distance, used for did-you-mean suggestions.
pub(crate) fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut previous: Vec<usize> = (0..=b.len()).collect();
    let mut current = vec![0usize; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        current[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let substitute = previous[j] + usize::from(ca != cb);
            current[j + 1] = substitute.min(previous[j + 1] + 1).min(current[j] + 1);
        }
        std::mem::swap(&mut previous, &mut current);
    }
    previous[b.len()]
}

/// The candidate closest to `input`, if any is close enough to plausibly be
/// a typo (distance at most 2, or a third of the input's length for long
/// keys).
pub(crate) fn closest_match<'a>(
    input: &str,
    candidates: impl Iterator<Item = &'a str>,
) -> Option<String> {
    let threshold = 2.max(input.chars().count() / 3);
    candidates
        .map(|c| (edit_distance(input, c), c))
        .min()
        .filter(|(d, _)| *d <= threshold)
        .map(|(_, c)| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bound_kind_labels_and_capability() {
        assert_eq!(BoundKind::AbsoluteError.label(), "absolute error bound");
        assert_eq!(BoundKind::BitsPerValue.to_string(), "bits per value");
        assert!(BoundKind::L2Norm.is_error_bounded());
        assert!(!BoundKind::BitsPerValue.is_error_bounded());
    }

    #[test]
    fn dim_range_supports() {
        let r = DimRange::new(2, 3);
        assert!(!r.supports(&Dims::d1(10)));
        assert!(r.supports(&Dims::d2(4, 4)));
        assert!(r.supports(&Dims::d3(2, 2, 2)));
        assert!(!r.supports(&Dims::d4(2, 2, 2, 2)));
        assert!(DimRange::any().supports(&Dims::d4(2, 2, 2, 2)));
        assert_eq!(r.to_string(), "2-D to 3-D");
        assert_eq!(DimRange::new(3, 3).to_string(), "3-D");
    }

    #[test]
    #[should_panic(expected = "bad dimensionality range")]
    fn dim_range_rejects_inverted() {
        DimRange::new(3, 2);
    }

    fn sample() -> CodecDescriptor {
        CodecDescriptor::new("demo", BoundKind::AbsoluteError)
            .with_alias("demo-abs")
            .with_summary("test codec")
            .with_option(
                OptionDescriptor::new("demo:block_size", OptionKind::U64)
                    .with_default(8u64)
                    .with_range(1.0, 64.0)
                    .with_doc("block edge length"),
            )
            .with_option(OptionDescriptor::new("demo:mode", OptionKind::Str))
    }

    #[test]
    fn valid_options_pass() {
        let d = sample();
        assert!(d.validate_options(&Options::new()).is_ok());
        let opts = Options::new()
            .with("demo:block_size", 16u64)
            .with("demo:mode", "fast");
        assert!(d.validate_options(&opts).is_ok());
        // Integral floats coerce into u64 options, as the getters allow.
        let coerced = Options::new().with("demo:block_size", 4.0);
        assert!(d.validate_options(&coerced).is_ok());
    }

    #[test]
    fn unknown_key_suggests_nearest() {
        let d = sample();
        let err = d
            .validate_options(&Options::new().with("demo:blok_size", 8u64))
            .unwrap_err();
        match err {
            RegistryError::UnknownOption {
                key, suggestion, ..
            } => {
                assert_eq!(key, "demo:blok_size");
                assert_eq!(suggestion.as_deref(), Some("demo:block_size"));
            }
            other => panic!("wrong error: {other}"),
        }
        // A key nothing like any declared option gets no suggestion.
        let err = d
            .validate_options(&Options::new().with("zzz", 1u64))
            .unwrap_err();
        match err {
            RegistryError::UnknownOption { suggestion, .. } => assert!(suggestion.is_none()),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn type_and_range_mismatches_fail() {
        let d = sample();
        let err = d
            .validate_options(&Options::new().with("demo:block_size", "eight"))
            .unwrap_err();
        assert!(matches!(err, RegistryError::TypeMismatch { .. }));
        assert!(err.to_string().contains("demo:block_size"));
        let err = d
            .validate_options(&Options::new().with("demo:block_size", 65u64))
            .unwrap_err();
        assert!(matches!(err, RegistryError::OutOfRange { .. }));
    }

    #[test]
    fn default_options_collects_declared_defaults() {
        let defaults = sample().default_options();
        assert_eq!(defaults.get_u64("demo:block_size"), Some(8));
        assert!(defaults.get("demo:mode").is_none());
    }

    #[test]
    fn all_names_and_display() {
        let d = sample();
        let names: Vec<&str> = d.all_names().collect();
        assert_eq!(names, vec!["demo", "demo-abs"]);
        assert!(d.to_string().contains("error-bounded"));
        let rate = CodecDescriptor::new("r", BoundKind::BitsPerValue);
        assert!(!rate.error_bounded);
        assert!(rate.to_string().contains("fixed-rate"));
    }

    #[test]
    fn psnr_model_inverts_and_rejects_degenerate_inputs() {
        let model = PsnrBoundModel::uniform_quantization();
        assert!((model.offset_db - 4.7712).abs() < 1e-3);
        // PSNR 60 dB on unit-range data: e = √3 · 10^(-60/20) ≈ 1.732e-3.
        let bound = model.bound_for_psnr(1.0, 60.0).unwrap();
        let expected = 3f64.sqrt() * 1e-3;
        assert!((bound - expected).abs() / bound < 1e-12, "bound {bound}");
        // Round trip: the forward model recovers the requested PSNR.
        let psnr = model.psnr_for_bound(1.0, bound).unwrap();
        assert!((psnr - 60.0).abs() < 1e-9);
        // Stricter targets give smaller bounds; bigger ranges bigger bounds.
        assert!(model.bound_for_psnr(1.0, 90.0).unwrap() < bound);
        assert!(model.bound_for_psnr(100.0, 60.0).unwrap() > bound);
        // Degenerate inputs give no hint rather than a bogus one.
        assert!(model.bound_for_psnr(0.0, 60.0).is_none());
        assert!(model.bound_for_psnr(f64::NAN, 60.0).is_none());
        assert!(model.bound_for_psnr(1.0, f64::INFINITY).is_none());
        assert!(model.psnr_for_bound(1.0, 0.0).is_none());
        // Descriptors carry the model only when a codec opts in.
        assert!(sample().psnr_model.is_none());
        let d = sample().with_psnr_model(model);
        assert_eq!(d.psnr_model, Some(model));
    }

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("abc", "abc"), 0);
        assert_eq!(edit_distance("abc", "abd"), 1);
        assert_eq!(edit_distance("block", "blok"), 1);
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(
            closest_match("sz:blok_size", ["sz:block_size"].into_iter()),
            Some("sz:block_size".into())
        );
        assert_eq!(
            closest_match("completely-different", ["sz:block_size"].into_iter()),
            None
        );
    }
}
