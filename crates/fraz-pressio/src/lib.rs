//! A libpressio-like abstraction layer over the workspace's lossy
//! compressors.
//!
//! FRaZ treats compressors as black boxes: all it needs is a closure
//! `e ↦ ρr(D, e)` mapping an error-bound setting to an achieved compression
//! ratio, regardless of which codec produced it.  The original implementation
//! built that closure on top of libpressio; this crate plays the same role:
//!
//! * [`Compressor`] — the uniform trait: compress under a scalar error-bound
//!   setting, decompress, report the valid bound range and dimensionality
//!   support,
//! * [`backends`] — adapters for the SZ-like, ZFP-like (accuracy and
//!   fixed-rate), MGARD-like (∞-norm and L2) and SZx-like (ultra-fast)
//!   codecs, each behind a cargo feature (`sz`, `zfp`, `mgard`, `szx`; all
//!   on by default) so slim builds can drop codec crates,
//! * [`descriptor`] — introspectable codec metadata: [`CodecDescriptor`]
//!   (name, aliases, [`BoundKind`], capabilities, dimensionalities) and the
//!   per-option schema [`OptionDescriptor`],
//! * [`registry`] — the extensible [`registry::Registry`]: factory
//!   registration plus validated, options-driven construction
//!   (`Registry::build("sz", &options)`), with a process-wide default
//!   registry pre-loaded with the feature-enabled built-ins (all six by
//!   default: `"sz"`, `"zfp"`, `"zfp-rate"`, `"mgard"`, `"mgard-l2"`,
//!   `"szx"`) that external codecs can join at runtime,
//! * [`CompressionOutcome`] / [`Compressor::evaluate`] — the
//!   compress-measure-decompress convenience FRaZ's loss function and the
//!   experiment harness are built on.

pub mod backends;
pub mod descriptor;
pub mod options;
pub mod registry;

pub use descriptor::{BoundKind, CodecDescriptor, DimRange, OptionDescriptor, PsnrBoundModel};
pub use options::{OptionKind, OptionValue, Options};
pub use registry::{Registry, RegistryError};

use std::fmt;

use serde::{Deserialize, Serialize};

use fraz_data::{Dataset, Dims};
use fraz_metrics::QualityReport;

/// Errors surfaced through the abstraction layer.
#[derive(Debug, Clone, PartialEq)]
pub enum PressioError {
    /// The bound/parameter is outside the compressor's valid range.
    InvalidBound(String),
    /// The dataset's dimensionality or type is unsupported by this backend.
    Unsupported(String),
    /// The underlying codec failed.
    Codec(String),
}

impl fmt::Display for PressioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PressioError::InvalidBound(msg) => write!(f, "invalid error-bound setting: {msg}"),
            PressioError::Unsupported(msg) => write!(f, "unsupported input: {msg}"),
            PressioError::Codec(msg) => write!(f, "codec failure: {msg}"),
        }
    }
}

impl std::error::Error for PressioError {}

/// The result of one compress (and optional decompress) invocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CompressionOutcome {
    /// Compressor name.
    pub compressor: String,
    /// The error-bound setting used.
    pub error_bound: f64,
    /// Achieved compression ratio `ρr(D, e)`.
    pub compression_ratio: f64,
    /// Bits per value after compression.
    pub bit_rate: f64,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Original size in bytes.
    pub original_bytes: usize,
    /// Full quality metrics (present when the caller asked for decompression
    /// and measurement, absent during pure ratio searches).
    pub quality: Option<QualityReport>,
}

/// The uniform compressor interface.
///
/// The scalar "error bound" parameter means whatever is natural for the
/// backend: an absolute error bound for SZ, MGARD and ZFP's accuracy mode, a
/// bits-per-value rate for ZFP's fixed-rate mode.  FRaZ only requires that
/// the parameter be a positive scalar with a known valid range.
pub trait Compressor: Send + Sync {
    /// Short backend name (e.g. `"sz"`).
    fn name(&self) -> &str;

    /// Which error-bounding mode the scalar parameter controls.
    fn bound_kind(&self) -> BoundKind {
        BoundKind::AbsoluteError
    }

    /// True if the backend can handle this grid shape.
    fn supports_dims(&self, dims: &Dims) -> bool;

    /// The valid `(lower, upper)` range of the error-bound setting for this
    /// dataset; used by FRaZ to delimit and split its search regions.
    fn bound_range(&self, dataset: &Dataset) -> (f64, f64);

    /// Compress under the given error-bound setting.
    fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError>;

    /// Decompress a stream previously produced by this backend.
    fn decompress(&self, data: &[u8]) -> Result<Dataset, PressioError>;

    /// Compress and report the achieved ratio; when `measure_quality` is
    /// true, also decompress and attach the full [`QualityReport`].
    fn evaluate(
        &self,
        dataset: &Dataset,
        error_bound: f64,
        measure_quality: bool,
    ) -> Result<CompressionOutcome, PressioError> {
        let compressed = self.compress(dataset, error_bound)?;
        let original_bytes = dataset.byte_size();
        let compressed_bytes = compressed.len();
        let quality = if measure_quality {
            let restored = self.decompress(&compressed)?;
            Some(QualityReport::evaluate(
                dataset,
                &restored,
                compressed_bytes,
            ))
        } else {
            None
        };
        Ok(CompressionOutcome {
            compressor: self.name().to_string(),
            error_bound,
            compression_ratio: fraz_metrics::ratio::compression_ratio(
                original_bytes,
                compressed_bytes,
            ),
            bit_rate: fraz_metrics::ratio::bit_rate(compressed_bytes, dataset.len()),
            compressed_bytes,
            original_bytes,
            quality,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::Dims;

    /// A trivial in-crate compressor used to exercise the trait's default
    /// `evaluate` implementation without touching the real codecs.
    struct Truncator;

    impl Compressor for Truncator {
        fn name(&self) -> &str {
            "truncator"
        }
        fn supports_dims(&self, _dims: &Dims) -> bool {
            true
        }
        fn bound_range(&self, _dataset: &Dataset) -> (f64, f64) {
            (1e-12, 1.0)
        }
        fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError> {
            if error_bound <= 0.0 {
                return Err(PressioError::InvalidBound("non-positive".into()));
            }
            // Keep one byte out of every `k` — obviously not a real codec,
            // but enough to produce a ratio for the test.
            let bytes = dataset.buffer.to_le_bytes();
            let k = (1.0 / error_bound).clamp(1.0, 16.0) as usize;
            Ok(bytes.iter().copied().step_by(k).collect())
        }
        fn decompress(&self, _data: &[u8]) -> Result<Dataset, PressioError> {
            Err(PressioError::Codec("truncator cannot decompress".into()))
        }
    }

    #[test]
    fn evaluate_reports_ratio_without_quality() {
        let dataset = Dataset::from_f32("t", "f", 0, Dims::d1(1000), vec![1.0; 1000]);
        let outcome = Truncator.evaluate(&dataset, 0.25, false).unwrap();
        assert_eq!(outcome.compressor, "truncator");
        assert_eq!(outcome.original_bytes, 4000);
        assert_eq!(outcome.compressed_bytes, 1000);
        assert!((outcome.compression_ratio - 4.0).abs() < 1e-12);
        assert!((outcome.bit_rate - 8.0).abs() < 1e-12);
        assert!(outcome.quality.is_none());
    }

    #[test]
    fn evaluate_propagates_codec_errors() {
        let dataset = Dataset::from_f32("t", "f", 0, Dims::d1(10), vec![1.0; 10]);
        assert!(matches!(
            Truncator.evaluate(&dataset, 0.0, false),
            Err(PressioError::InvalidBound(_))
        ));
        // Asking for quality forces a decompress, which this backend refuses.
        assert!(matches!(
            Truncator.evaluate(&dataset, 0.5, true),
            Err(PressioError::Codec(_))
        ));
    }

    #[test]
    fn error_display() {
        assert!(PressioError::Unsupported("1-D".into())
            .to_string()
            .contains("unsupported"));
        assert!(PressioError::Codec("x".into())
            .to_string()
            .contains("codec"));
    }
}
