//! The extensible compressor registry: factory registration, introspection,
//! and validated options-driven construction.
//!
//! Libpressio's entry point is `pressio_get_compressor(name)` backed by a
//! runtime plugin registry; this module is the equivalent.  A [`Registry`]
//! maps codec names (and aliases) to a
//! [`CodecDescriptor`] plus a factory closure, and
//! [`Registry::build`] validates the caller's [`Options`] against the
//! descriptor before invoking the factory — unknown keys and type
//! mismatches are [`RegistryError`]s with did-you-mean suggestions, never
//! silently ignored.
//!
//! A process-wide default registry (lazily initialized, `parking_lot`
//! guarded) is pre-loaded with the feature-enabled built-in backends (all
//! six by default); [`register`] plugs external codecs into it without
//! editing this crate, and the module-level [`build`]/[`describe`]/[`names`]
//! free functions read it.
//!
//! # Registering an out-of-tree codec
//!
//! ```
//! use fraz_data::{Dataset, Dims};
//! use fraz_pressio::options::Options;
//! use fraz_pressio::registry::Registry;
//! use fraz_pressio::{BoundKind, CodecDescriptor, Compressor, PressioError};
//!
//! /// Stores one value in `k`, where `k` scales inversely with the bound.
//! struct ConstantCodec;
//!
//! impl Compressor for ConstantCodec {
//!     fn name(&self) -> &str {
//!         "constant"
//!     }
//!     fn supports_dims(&self, _dims: &Dims) -> bool {
//!         true
//!     }
//!     fn bound_range(&self, _dataset: &Dataset) -> (f64, f64) {
//!         (1e-9, 1.0)
//!     }
//!     fn compress(&self, dataset: &Dataset, bound: f64) -> Result<Vec<u8>, PressioError> {
//!         let mean = dataset.values_f64().iter().sum::<f64>() / dataset.len() as f64;
//!         let mut out = mean.to_le_bytes().to_vec();
//!         out.extend((dataset.len() as u64).to_le_bytes());
//!         out.resize(out.len() + (1.0 / bound) as usize, 0);
//!         Ok(out)
//!     }
//!     fn decompress(&self, data: &[u8]) -> Result<Dataset, PressioError> {
//!         let mean = f64::from_le_bytes(data[..8].try_into().unwrap());
//!         let n = u64::from_le_bytes(data[8..16].try_into().unwrap()) as usize;
//!         Ok(Dataset::from_f64("constant", "field", 0, Dims::d1(n), vec![mean; n]))
//!     }
//! }
//!
//! let mut registry = Registry::with_builtins();
//! registry
//!     .register(
//!         CodecDescriptor::new("constant", BoundKind::AbsoluteError)
//!             .with_summary("mean-value codec (doc example)"),
//!         |_options| Ok(Box::new(ConstantCodec)),
//!     )
//!     .unwrap();
//!
//! let codec = registry.build("constant", &Options::new()).unwrap();
//! assert_eq!(codec.name(), "constant");
//! assert!(registry.names().contains(&"constant".to_string()));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;

use crate::descriptor::{closest_match, CodecDescriptor};
use crate::options::{OptionKind, Options};
use crate::{Compressor, PressioError};

/// Errors from registry lookup, registration, validation or construction.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No codec answers to this name.
    UnknownCodec {
        /// The requested name.
        name: String,
        /// The closest registered name, when one is plausibly a typo away.
        suggestion: Option<String>,
    },
    /// An option key is not in the codec's schema.
    UnknownOption {
        /// The codec whose schema was consulted.
        codec: String,
        /// The offending key.
        key: String,
        /// The closest declared key, when one is plausibly a typo away.
        suggestion: Option<String>,
    },
    /// An option value has the wrong type for its declared kind.
    TypeMismatch {
        /// The codec whose schema was consulted.
        codec: String,
        /// The offending key.
        key: String,
        /// The declared kind.
        expected: OptionKind,
        /// The provided value's kind.
        actual: OptionKind,
    },
    /// A numeric option value lies outside its declared range.
    OutOfRange {
        /// The codec whose schema was consulted.
        codec: String,
        /// The offending key.
        key: String,
        /// The provided value.
        value: f64,
        /// The declared inclusive range.
        range: (f64, f64),
    },
    /// Registration would shadow an existing name or alias.
    DuplicateName {
        /// The name or alias that is already taken.
        name: String,
    },
    /// The factory itself refused to construct the codec.
    Construction {
        /// The codec being constructed.
        codec: String,
        /// The factory's error.
        source: PressioError,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownCodec { name, suggestion } => {
                write!(f, "no codec named {name:?} is registered")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
            RegistryError::UnknownOption {
                codec,
                key,
                suggestion,
            } => {
                write!(f, "codec {codec:?} has no option {key:?}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                Ok(())
            }
            RegistryError::TypeMismatch {
                codec,
                key,
                expected,
                actual,
            } => write!(
                f,
                "option {key:?} of codec {codec:?} expects a {expected} value, got {actual}"
            ),
            RegistryError::OutOfRange {
                codec,
                key,
                value,
                range,
            } => write!(
                f,
                "option {key:?} of codec {codec:?} must be in [{}, {}], got {value}",
                range.0, range.1
            ),
            RegistryError::DuplicateName { name } => {
                write!(f, "a codec named {name:?} is already registered")
            }
            RegistryError::Construction { codec, source } => {
                write!(f, "constructing codec {codec:?} failed: {source}")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

/// The factory signature every registration provides: given a *validated*
/// options bag, construct a ready-to-use backend.
pub type CodecFactory =
    Arc<dyn Fn(&Options) -> Result<Box<dyn Compressor>, PressioError> + Send + Sync>;

struct Entry {
    descriptor: CodecDescriptor,
    factory: CodecFactory,
}

impl Clone for Entry {
    fn clone(&self) -> Self {
        Self {
            descriptor: self.descriptor.clone(),
            factory: Arc::clone(&self.factory),
        }
    }
}

/// A set of registered codecs: descriptors for introspection, factories for
/// construction.
///
/// Most code uses the process-wide default registry through the module's
/// free functions; tests and embedders that want isolation build their own
/// instance with [`Registry::empty`] or [`Registry::with_builtins`].
#[derive(Clone, Default)]
pub struct Registry {
    /// Canonical name → entry.
    entries: BTreeMap<String, Entry>,
    /// Alias → canonical name.
    aliases: BTreeMap<String, String>,
}

impl Registry {
    /// A registry with nothing registered.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the built-in backends the crate's codec
    /// features enable — with the default feature set: `"sz"`, `"zfp"`,
    /// `"zfp-rate"`, `"mgard"`, `"mgard-l2"`, `"szx"`.
    pub fn with_builtins() -> Self {
        let mut registry = Self::empty();
        crate::backends::install_builtins(&mut registry);
        registry
    }

    /// Register a codec: its descriptor plus a factory closure.
    ///
    /// Fails with [`RegistryError::DuplicateName`] if the descriptor's name
    /// or any alias is already taken (as a name or an alias).
    pub fn register<F>(
        &mut self,
        descriptor: CodecDescriptor,
        factory: F,
    ) -> Result<(), RegistryError>
    where
        F: Fn(&Options) -> Result<Box<dyn Compressor>, PressioError> + Send + Sync + 'static,
    {
        for name in descriptor.all_names() {
            if self.entries.contains_key(name) || self.aliases.contains_key(name) {
                return Err(RegistryError::DuplicateName {
                    name: name.to_string(),
                });
            }
        }
        for alias in &descriptor.aliases {
            self.aliases.insert(alias.clone(), descriptor.name.clone());
        }
        self.entries.insert(
            descriptor.name.clone(),
            Entry {
                descriptor,
                factory: Arc::new(factory),
            },
        );
        Ok(())
    }

    fn resolve(&self, name: &str) -> Option<&Entry> {
        if let Some(entry) = self.entries.get(name) {
            return Some(entry);
        }
        let canonical = self.aliases.get(name)?;
        self.entries.get(canonical)
    }

    fn lookup(&self, name: &str) -> Result<&Entry, RegistryError> {
        self.resolve(name)
            .ok_or_else(|| RegistryError::UnknownCodec {
                name: name.to_string(),
                suggestion: closest_match(
                    name,
                    self.entries
                        .keys()
                        .chain(self.aliases.keys())
                        .map(String::as_str),
                ),
            })
    }

    /// Construct a codec by name or alias, validating `options` against its
    /// schema first.
    pub fn build(
        &self,
        name: &str,
        options: &Options,
    ) -> Result<Box<dyn Compressor>, RegistryError> {
        build_from_entry(self.lookup(name)?, options)
    }

    /// Like [`Registry::build`], but returns a shareable handle — the form
    /// `FixedRatioSearch` and the orchestrator consume.
    pub fn build_arc(
        &self,
        name: &str,
        options: &Options,
    ) -> Result<Arc<dyn Compressor>, RegistryError> {
        self.build(name, options).map(Arc::from)
    }

    /// The descriptor registered under a name or alias.
    pub fn describe(&self, name: &str) -> Option<&CodecDescriptor> {
        self.resolve(name).map(|e| &e.descriptor)
    }

    /// True when a codec answers to this name or alias.
    pub fn contains(&self, name: &str) -> bool {
        self.resolve(name).is_some()
    }

    /// Canonical names of every registered codec, sorted.
    pub fn names(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Canonical names of the codecs usable as FRaZ search targets
    /// (error-bounded capability), sorted.
    pub fn error_bounded_names(&self) -> Vec<String> {
        self.entries
            .values()
            .filter(|e| e.descriptor.error_bounded)
            .map(|e| e.descriptor.name.clone())
            .collect()
    }

    /// Every registered descriptor, in name order.
    pub fn descriptors(&self) -> impl Iterator<Item = &CodecDescriptor> {
        self.entries.values().map(|e| &e.descriptor)
    }

    /// Number of registered codecs (aliases not counted).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl fmt::Debug for Registry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Registry")
            .field("names", &self.names())
            .finish()
    }
}

/// Validate and construct from one entry.  Shared by `Registry::build` and
/// the global free functions, which clone the entry and *release the
/// registry lock first* so a factory may re-enter the registry (e.g. a
/// composite codec building its inner codec) without deadlocking.
fn build_from_entry(
    entry: &Entry,
    options: &Options,
) -> Result<Box<dyn Compressor>, RegistryError> {
    entry.descriptor.validate_options(options)?;
    (entry.factory)(options).map_err(|source| RegistryError::Construction {
        codec: entry.descriptor.name.clone(),
        source,
    })
}

/// The process-wide default registry, created on first use with the
/// built-in backends installed.
///
/// The lock is exposed so embedders can do multi-step operations (e.g.
/// snapshot + bulk-register) atomically; everyday code should prefer the
/// free functions, which take the lock for single calls only.
pub fn global() -> &'static RwLock<Registry> {
    static GLOBAL: OnceLock<RwLock<Registry>> = OnceLock::new();
    GLOBAL.get_or_init(|| RwLock::new(Registry::with_builtins()))
}

/// Register a codec in the process-wide default registry.
pub fn register<F>(descriptor: CodecDescriptor, factory: F) -> Result<(), RegistryError>
where
    F: Fn(&Options) -> Result<Box<dyn Compressor>, PressioError> + Send + Sync + 'static,
{
    global().write().register(descriptor, factory)
}

/// Construct a codec from the default registry, validating `options`.
///
/// The registry lock is held only for the entry lookup, not while the
/// factory runs, so factories may call back into the registry.
pub fn build(name: &str, options: &Options) -> Result<Box<dyn Compressor>, RegistryError> {
    let entry = global().read().lookup(name).map(Entry::clone)?;
    build_from_entry(&entry, options)
}

/// Construct a codec from the default registry with default settings.
pub fn build_default(name: &str) -> Result<Box<dyn Compressor>, RegistryError> {
    build(name, &Options::new())
}

/// Construct a shareable codec handle from the default registry.
pub fn build_arc(name: &str, options: &Options) -> Result<Arc<dyn Compressor>, RegistryError> {
    build(name, options).map(Arc::from)
}

/// A clone of the descriptor registered under a name in the default
/// registry.
pub fn describe(name: &str) -> Option<CodecDescriptor> {
    global().read().describe(name).cloned()
}

/// True when the default registry knows this name or alias.
pub fn contains(name: &str) -> bool {
    global().read().contains(name)
}

/// Names of every codec in the default registry.
///
/// Kept from the pre-registry API; now reflects external registrations too.
pub fn names() -> Vec<String> {
    global().read().names()
}

/// Names of the default registry's FRaZ-searchable (error-bounded) codecs.
pub fn error_bounded_names() -> Vec<String> {
    global().read().error_bounded_names()
}

/// Construct a backend by name with default settings.
#[deprecated(
    since = "0.2.0",
    note = "use `registry::build_default` (or \
`Registry::build`), which distinguishes unknown codecs from bad options"
)]
pub fn compressor(name: &str) -> Option<Box<dyn Compressor>> {
    build_default(name).ok()
}

/// Construct a backend by name, configured from an options bag.
#[deprecated(
    since = "0.2.0",
    note = "use `registry::build` (or \
`Registry::build`), which validates the options instead of ignoring \
unknown keys"
)]
pub fn compressor_with_options(name: &str, options: &Options) -> Option<Box<dyn Compressor>> {
    build(name, options).ok()
}

/// Tests that run under any feature combination (the slim-build CI job
/// exercises `--no-default-features --features szx`).
#[cfg(test)]
mod feature_independent_tests {
    use super::*;
    use crate::descriptor::BoundKind;

    struct NullCodec;
    impl Compressor for NullCodec {
        fn name(&self) -> &str {
            "null"
        }
        fn supports_dims(&self, _dims: &fraz_data::Dims) -> bool {
            true
        }
        fn bound_range(&self, _dataset: &fraz_data::Dataset) -> (f64, f64) {
            (1e-9, 1.0)
        }
        fn compress(
            &self,
            _dataset: &fraz_data::Dataset,
            _bound: f64,
        ) -> Result<Vec<u8>, PressioError> {
            Ok(Vec::new())
        }
        fn decompress(&self, _data: &[u8]) -> Result<fraz_data::Dataset, PressioError> {
            Err(PressioError::Codec("null codec".into()))
        }
    }

    #[test]
    fn with_builtins_matches_enabled_features() {
        let registry = Registry::with_builtins();
        assert_eq!(registry.contains("sz"), cfg!(feature = "sz"));
        assert_eq!(registry.contains("zfp"), cfg!(feature = "zfp"));
        assert_eq!(registry.contains("zfp-rate"), cfg!(feature = "zfp"));
        assert_eq!(registry.contains("mgard"), cfg!(feature = "mgard"));
        assert_eq!(registry.contains("mgard-l2"), cfg!(feature = "mgard"));
        assert_eq!(registry.contains("szx"), cfg!(feature = "szx"));
    }

    #[test]
    fn aliases_resolve_to_the_canonical_codec() {
        let mut registry = Registry::empty();
        registry
            .register(
                CodecDescriptor::new("real", BoundKind::AbsoluteError).with_alias("nickname"),
                |_| Ok(Box::new(NullCodec)),
            )
            .unwrap();
        assert!(registry.contains("nickname"));
        assert_eq!(registry.describe("nickname").unwrap().name, "real");
        assert!(registry.build("nickname", &Options::new()).is_ok());
        // Aliases do not appear among canonical names.
        assert_eq!(registry.names(), vec!["real".to_string()]);
    }

    #[test]
    fn factory_errors_surface_as_construction_errors() {
        let mut registry = Registry::empty();
        registry
            .register(
                CodecDescriptor::new("broken", BoundKind::AbsoluteError),
                |_| Err(PressioError::Codec("always fails".into())),
            )
            .unwrap();
        let err = registry.build("broken", &Options::new()).err().unwrap();
        match &err {
            RegistryError::Construction { codec, source } => {
                assert_eq!(codec, "broken");
                assert!(matches!(source, PressioError::Codec(_)));
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(err.to_string().contains("always fails"));
    }

    #[test]
    fn error_displays_are_actionable() {
        let err = RegistryError::UnknownOption {
            codec: "sz".into(),
            key: "sz:blok_size".into(),
            suggestion: Some("sz:block_size".into()),
        };
        let msg = err.to_string();
        assert!(msg.contains("sz:blok_size") && msg.contains("did you mean"));
        let err = RegistryError::TypeMismatch {
            codec: "sz".into(),
            key: "sz:block_size".into(),
            expected: OptionKind::U64,
            actual: OptionKind::Str,
        };
        assert!(err.to_string().contains("expects a u64 value, got string"));
        let err = RegistryError::OutOfRange {
            codec: "sz".into(),
            key: "sz:block_size".into(),
            value: 99.0,
            range: (1.0, 64.0),
        };
        assert!(err.to_string().contains("[1, 64]"));
        let err = RegistryError::UnknownCodec {
            name: "zzz".into(),
            suggestion: None,
        };
        assert!(err.to_string().contains("zzz"));
        assert!(RegistryError::DuplicateName { name: "x".into() }
            .to_string()
            .contains("already registered"));
    }

    #[test]
    fn empty_registry_reports_unknown_without_suggestion() {
        let registry = Registry::empty();
        assert!(registry.is_empty());
        match registry.build("sz", &Options::new()).err().unwrap() {
            RegistryError::UnknownCodec { suggestion, .. } => assert!(suggestion.is_none()),
            other => panic!("wrong error: {other}"),
        }
    }
}

#[cfg(all(
    test,
    feature = "sz",
    feature = "zfp",
    feature = "mgard",
    feature = "szx"
))]
mod tests {
    use super::*;
    use crate::backends::{SzBackend, ZfpAccuracyBackend};
    use crate::descriptor::{BoundKind, DimRange};
    use fraz_data::{Dataset, Dims};

    const BUILTINS: [&str; 6] = ["sz", "zfp", "zfp-rate", "mgard", "mgard-l2", "szx"];

    #[test]
    fn builtins_construct_and_describe() {
        let registry = Registry::with_builtins();
        assert_eq!(registry.len(), 6);
        assert!(!registry.is_empty());
        for name in BUILTINS {
            let codec = registry.build(name, &Options::new()).unwrap();
            assert_eq!(codec.name(), name);
            let descriptor = registry.describe(name).unwrap();
            assert_eq!(descriptor.name, name);
            assert_eq!(descriptor.bound_kind, codec.bound_kind());
        }
        let mut expected = BUILTINS.map(String::from).to_vec();
        expected.sort();
        assert_eq!(registry.names(), expected, "names are sorted");
    }

    #[test]
    fn unknown_codec_suggests_nearest_name() {
        let registry = Registry::with_builtins();
        let err = registry.build("szz", &Options::new()).err().unwrap();
        match err {
            RegistryError::UnknownCodec { name, suggestion } => {
                assert_eq!(name, "szz");
                assert_eq!(suggestion.as_deref(), Some("sz"));
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(registry.build("does-not-exist", &Options::new()).is_err());
    }

    #[test]
    fn error_bounded_subset_excludes_fixed_rate() {
        let registry = Registry::with_builtins();
        let eb = registry.error_bounded_names();
        assert!(eb.contains(&"sz".to_string()));
        assert!(eb.contains(&"zfp".to_string()));
        assert!(eb.contains(&"szx".to_string()));
        assert!(!eb.contains(&"zfp-rate".to_string()));
        for name in &eb {
            assert!(registry.contains(name));
        }
        // The capability flag matches the descriptor's bound kind.
        for d in registry.descriptors() {
            assert_eq!(
                d.error_bounded,
                d.bound_kind.is_error_bounded(),
                "{}",
                d.name
            );
        }
    }

    #[test]
    fn constructed_backends_work_end_to_end() {
        let registry = Registry::with_builtins();
        let values: Vec<f32> = (0..32 * 32)
            .map(|i| ((i % 32) as f32 * 0.2).sin() * 7.0)
            .collect();
        let dataset = Dataset::from_f32("t", "f", 0, Dims::d2(32, 32), values);
        for name in registry.error_bounded_names() {
            let backend = registry.build(&name, &Options::new()).unwrap();
            let outcome = backend.evaluate(&dataset, 1e-2, true).unwrap();
            assert!(outcome.compression_ratio > 1.0, "{name}");
            let quality = outcome.quality.unwrap();
            if name == "mgard-l2" {
                // The L2 backend bounds the RMS error, not the max error.
                assert!(quality.rmse <= 1e-2, "{name}: rmse {}", quality.rmse);
            } else {
                assert!(quality.max_abs_error <= 1e-2 + 1e-12, "{name}");
            }
        }
    }

    #[test]
    fn options_are_validated_not_ignored() {
        let registry = Registry::with_builtins();
        // Valid option: accepted and forwarded.
        let options = Options::new().with("sz:block_size", 8u64);
        let backend = registry.build("sz", &options).unwrap();
        assert_eq!(backend.name(), "sz");

        // The silent-ignore footgun is gone: a typo'd key is an error that
        // names the nearest valid key.
        let typo = Options::new().with("sz:blok_size", 8u64);
        let err = registry.build("sz", &typo).err().unwrap();
        match err {
            RegistryError::UnknownOption {
                codec,
                key,
                suggestion,
            } => {
                assert_eq!(codec, "sz");
                assert_eq!(key, "sz:blok_size");
                assert_eq!(suggestion.as_deref(), Some("sz:block_size"));
            }
            other => panic!("wrong error: {other}"),
        }

        // Mistyped values are errors too.
        let mistyped = Options::new().with("sz:block_size", "eight");
        assert!(matches!(
            registry.build("sz", &mistyped),
            Err(RegistryError::TypeMismatch { .. })
        ));

        // Options for a *different* codec are unknown here by design: the
        // caller passes each codec its own namespace.
        let foreign = Options::new().with("zfp:mode", "accuracy");
        assert!(matches!(
            registry.build("sz", &foreign),
            Err(RegistryError::UnknownOption { .. })
        ));
    }

    #[test]
    fn registration_rejects_duplicates() {
        let mut registry = Registry::with_builtins();
        let err = registry
            .register(CodecDescriptor::new("sz", BoundKind::AbsoluteError), |_| {
                Ok(Box::new(ZfpAccuracyBackend))
            })
            .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateName { name: "sz".into() });
        // Aliases are reserved names too, in both directions.
        let err = registry
            .register(
                CodecDescriptor::new("fresh", BoundKind::AbsoluteError).with_alias("zfp"),
                |_| Ok(Box::new(ZfpAccuracyBackend)),
            )
            .unwrap_err();
        assert_eq!(err, RegistryError::DuplicateName { name: "zfp".into() });
        assert_eq!(registry.len(), 6, "failed registrations must not leak");
    }

    #[test]
    fn build_arc_returns_shareable_handle() {
        let registry = Registry::with_builtins();
        let codec = registry.build_arc("zfp", &Options::new()).unwrap();
        let clone = Arc::clone(&codec);
        assert_eq!(clone.name(), "zfp");
    }

    #[test]
    fn global_registry_serves_builtins_and_registrations() {
        for name in BUILTINS {
            assert!(contains(name), "{name}");
            assert!(names().contains(&name.to_string()));
        }
        assert!(build_default("zfp").is_ok());
        assert!(build_arc("sz", &Options::new()).is_ok());
        assert_eq!(
            describe("mgard").unwrap().bound_kind,
            BoundKind::InfinityNorm
        );
        assert!(describe("missing").is_none());
        assert!(!error_bounded_names().contains(&"zfp-rate".to_string()));

        // A registration through the free function is immediately visible.
        register(
            CodecDescriptor::new("unit-test-global", BoundKind::AbsoluteError)
                .with_dims(DimRange::any()),
            |_| Ok(Box::new(SzBackend::new())),
        )
        .unwrap();
        assert!(contains("unit-test-global"));
        assert!(build_default("unit-test-global").is_ok());
    }

    #[test]
    fn global_factories_may_reenter_the_registry() {
        // A composite codec whose factory builds its inner codec from the
        // same global registry.  This deadlocks if build() holds the
        // registry lock while the factory runs, so run it on a watchdog
        // thread and fail instead of hanging the suite.
        register(
            CodecDescriptor::new("reenter-unit-test", BoundKind::AbsoluteError),
            |_| build("sz", &Options::new()).map_err(|e| PressioError::Codec(e.to_string())),
        )
        .unwrap();
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            tx.send(build_default("reenter-unit-test").map(|c| c.name().to_string()))
                .ok();
        });
        let result = rx
            .recv_timeout(std::time::Duration::from_secs(10))
            .expect("re-entrant factory deadlocked on the registry lock");
        assert_eq!(result.unwrap(), "sz");
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_still_work() {
        for name in BUILTINS {
            let c = compressor(name).unwrap_or_else(|| panic!("backend {name} missing"));
            assert_eq!(c.name(), name);
        }
        assert!(compressor("does-not-exist").is_none());
        let options = Options::new().with("sz:block_size", 8u64);
        assert!(compressor_with_options("sz", &options).is_some());
        // The shim no longer silently ignores bad options — it reports
        // failure the only way its signature can.
        let typo = Options::new().with("sz:blok_size", 8u64);
        assert!(compressor_with_options("sz", &typo).is_none());
    }

    #[test]
    fn descriptor_option_schemas_document_the_builtins() {
        let registry = Registry::with_builtins();
        let sz = registry.describe("sz").unwrap();
        let block = sz.option("sz:block_size").unwrap();
        assert_eq!(block.kind, OptionKind::U64);
        assert!(block.range.is_some());
        assert!(!block.doc.is_empty());
        let defaults = sz.default_options();
        assert!(defaults.get_u64("sz:quant_capacity").is_some());
        // Backends without knobs have empty (but present) schemas.
        assert!(registry.describe("zfp").unwrap().options.is_empty());
        assert_eq!(
            registry.describe("mgard").unwrap().dims,
            DimRange::new(2, 3)
        );
        // The szx knob is introspectable with a default and a range.
        let szx = registry.describe("szx").unwrap();
        let block = szx.option("szx:block_size").unwrap();
        assert_eq!(block.kind, OptionKind::U64);
        assert!(block.default.is_some() && block.range.is_some());
    }
}
