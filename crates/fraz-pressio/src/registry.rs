//! Name-based construction of compressor backends.
//!
//! Libpressio's entry point is `pressio_get_compressor(name)`; this module is
//! the equivalent.  FRaZ, the examples and the experiment binaries all select
//! backends by name so a run can be re-pointed at a different codec with a
//! string change.

use crate::backends::{MgardBackend, SzBackend, ZfpAccuracyBackend, ZfpFixedRateBackend};
use crate::options::Options;
use crate::Compressor;

/// Names of every registered backend.
pub fn names() -> Vec<&'static str> {
    vec!["sz", "zfp", "zfp-rate", "mgard", "mgard-l2"]
}

/// Names of the backends usable as FRaZ search targets (error-bounded modes
/// only; the fixed-rate baseline is excluded).
pub fn error_bounded_names() -> Vec<&'static str> {
    vec!["sz", "zfp", "mgard", "mgard-l2"]
}

/// Construct a backend by name with default settings.
pub fn compressor(name: &str) -> Option<Box<dyn Compressor>> {
    compressor_with_options(name, &Options::new())
}

/// Construct a backend by name, configured from an options bag.
pub fn compressor_with_options(name: &str, options: &Options) -> Option<Box<dyn Compressor>> {
    match name {
        "sz" => Some(Box::new(SzBackend::from_options(options))),
        "zfp" => Some(Box::new(ZfpAccuracyBackend)),
        "zfp-rate" => Some(Box::new(ZfpFixedRateBackend)),
        "mgard" => Some(Box::new(MgardBackend::infinity())),
        "mgard-l2" => Some(Box::new(MgardBackend::l2())),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::{Dataset, Dims};

    #[test]
    fn every_registered_name_constructs() {
        for name in names() {
            let c = compressor(name).unwrap_or_else(|| panic!("backend {name} missing"));
            assert_eq!(c.name(), name);
        }
        assert!(compressor("does-not-exist").is_none());
    }

    #[test]
    fn error_bounded_subset_excludes_fixed_rate() {
        let eb = error_bounded_names();
        assert!(eb.contains(&"sz"));
        assert!(eb.contains(&"zfp"));
        assert!(!eb.contains(&"zfp-rate"));
        for name in eb {
            assert!(names().contains(&name));
        }
    }

    #[test]
    fn constructed_backends_work_end_to_end() {
        let values: Vec<f32> = (0..32 * 32)
            .map(|i| ((i % 32) as f32 * 0.2).sin() * 7.0)
            .collect();
        let dataset = Dataset::from_f32("t", "f", 0, Dims::d2(32, 32), values);
        for name in error_bounded_names() {
            let backend = compressor(name).unwrap();
            let outcome = backend.evaluate(&dataset, 1e-2, true).unwrap();
            assert!(outcome.compression_ratio > 1.0, "{name}");
            let quality = outcome.quality.unwrap();
            if name == "mgard-l2" {
                // The L2 backend bounds the RMS error, not the max error.
                assert!(quality.rmse <= 1e-2, "{name}: rmse {}", quality.rmse);
            } else {
                assert!(quality.max_abs_error <= 1e-2 + 1e-12, "{name}");
            }
        }
    }

    #[test]
    fn options_are_forwarded() {
        let options = Options::new().with("sz:block_size", 8u64);
        let backend = compressor_with_options("sz", &options).unwrap();
        assert_eq!(backend.name(), "sz");
    }
}
