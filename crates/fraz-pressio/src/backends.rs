//! Adapters exposing the workspace codecs through the [`Compressor`] trait.
//!
//! Every backend sits behind a cargo feature of the same family (`sz`,
//! `zfp`, `mgard`, `szx`, all on by default) so slim builds can drop the
//! codec crates they do not ship.

use fraz_data::{Dataset, Dims};
#[cfg(feature = "mgard")]
use fraz_mgard::{ErrorNorm, MgardConfig};
#[cfg(feature = "sz")]
use fraz_sz::SzConfig;
#[cfg(feature = "szx")]
use fraz_szx::SzxConfig;
#[cfg(feature = "zfp")]
use fraz_zfp::{ZfpConfig, ZfpMode};

#[cfg(feature = "mgard")]
use crate::descriptor::DimRange;
#[cfg(any(feature = "sz", feature = "szx"))]
use crate::descriptor::OptionDescriptor;
use crate::descriptor::{BoundKind, CodecDescriptor, PsnrBoundModel};
#[cfg(any(feature = "sz", feature = "szx"))]
use crate::options::OptionKind;
use crate::options::Options;
use crate::registry::Registry;
use crate::{Compressor, PressioError};

/// Smallest error-bound setting offered to the search, as a fraction of the
/// field's value range (below this the codecs are effectively lossless and
/// searching finer bounds is pointless).
#[allow(dead_code)] // unused only when every codec feature is off
const MIN_BOUND_FRACTION: f64 = 1e-9;

#[allow(dead_code)] // unused only when every codec feature is off
fn range_based_bounds(dataset: &Dataset) -> (f64, f64) {
    let range = dataset.stats().value_range();
    if range > 0.0 && range.is_finite() {
        (range * MIN_BOUND_FRACTION, range)
    } else {
        // Constant or degenerate field: any tiny positive bound works.
        (1e-12, 1.0)
    }
}

/// SZ-like backend (absolute error bound).
#[cfg(feature = "sz")]
#[derive(Debug, Clone)]
pub struct SzBackend {
    config: SzConfig,
}

#[cfg(feature = "sz")]
impl SzBackend {
    /// Backend with default SZ settings.
    pub fn new() -> Self {
        Self {
            config: SzConfig::default(),
        }
    }

    /// The registry metadata for this backend, including its option schema.
    pub fn descriptor() -> CodecDescriptor {
        CodecDescriptor::new("sz", BoundKind::AbsoluteError)
            .with_summary("SZ-like blockwise prediction + quantization compressor")
            // Linear-scaling quantization ⇒ near-uniform error on [-e, e],
            // so the Fixed-PSNR closed form applies.
            .with_psnr_model(PsnrBoundModel::uniform_quantization())
            .with_option(
                OptionDescriptor::new("sz:block_size", OptionKind::U64)
                    .with_range(2.0, 4096.0)
                    .with_doc("block edge length; unset selects 6 (3-D), 16 (2-D) or 256 (1-D)"),
            )
            .with_option(
                OptionDescriptor::new("sz:quant_capacity", OptionKind::U64)
                    .with_default(65536u64)
                    .with_range(16.0, 1_048_576.0)
                    .with_doc("number of linear-scaling quantization bins"),
            )
    }

    /// Backend configured from an options bag (`sz:block_size`,
    /// `sz:quant_capacity`).
    pub fn from_options(options: &Options) -> Self {
        let mut config = SzConfig::default();
        if let Some(b) = options.get_u64("sz:block_size") {
            config.block_size = Some(b as usize);
        }
        if let Some(c) = options.get_u64("sz:quant_capacity") {
            config.quant_capacity = c as u32;
        }
        Self { config }
    }
}

#[cfg(feature = "sz")]
impl Default for SzBackend {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(feature = "sz")]
impl Compressor for SzBackend {
    fn name(&self) -> &str {
        "sz"
    }
    fn bound_kind(&self) -> BoundKind {
        BoundKind::AbsoluteError
    }
    fn supports_dims(&self, _dims: &Dims) -> bool {
        true
    }
    fn bound_range(&self, dataset: &Dataset) -> (f64, f64) {
        range_based_bounds(dataset)
    }
    fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError> {
        let config = SzConfig {
            error_bound,
            ..self.config.clone()
        };
        fraz_sz::compress(dataset, &config).map_err(|e| match e {
            fraz_sz::SzError::InvalidConfig(msg) => PressioError::InvalidBound(msg),
            other => PressioError::Codec(other.to_string()),
        })
    }
    fn decompress(&self, data: &[u8]) -> Result<Dataset, PressioError> {
        fraz_sz::decompress(data).map_err(|e| PressioError::Codec(e.to_string()))
    }
}

/// ZFP-like backend in fixed-accuracy (error-bounded) mode.
#[cfg(feature = "zfp")]
#[derive(Debug, Clone, Default)]
pub struct ZfpAccuracyBackend;

#[cfg(feature = "zfp")]
impl ZfpAccuracyBackend {
    /// The registry metadata for this backend.
    pub fn descriptor() -> CodecDescriptor {
        CodecDescriptor::new("zfp", BoundKind::AccuracyTolerance)
            .with_alias("zfp-accuracy")
            .with_summary("ZFP-like block-transform compressor, fixed-accuracy mode")
    }
}

#[cfg(feature = "zfp")]
impl Compressor for ZfpAccuracyBackend {
    fn name(&self) -> &str {
        "zfp"
    }
    fn bound_kind(&self) -> BoundKind {
        BoundKind::AccuracyTolerance
    }
    fn supports_dims(&self, _dims: &Dims) -> bool {
        true
    }
    fn bound_range(&self, dataset: &Dataset) -> (f64, f64) {
        range_based_bounds(dataset)
    }
    fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError> {
        fraz_zfp::compress(dataset, &ZfpConfig::accuracy(error_bound)).map_err(|e| match e {
            fraz_zfp::ZfpError::InvalidConfig(msg) => PressioError::InvalidBound(msg),
            other => PressioError::Codec(other.to_string()),
        })
    }
    fn decompress(&self, data: &[u8]) -> Result<Dataset, PressioError> {
        fraz_zfp::decompress(data).map_err(|e| PressioError::Codec(e.to_string()))
    }
}

/// ZFP-like backend in fixed-rate mode.
///
/// The scalar parameter is the **bits-per-value rate**, not an error bound;
/// this backend exists as the paper's baseline (Figs 1, 9, 10), not as a
/// FRaZ search target.
#[cfg(feature = "zfp")]
#[derive(Debug, Clone, Default)]
pub struct ZfpFixedRateBackend;

#[cfg(feature = "zfp")]
impl ZfpFixedRateBackend {
    /// The registry metadata for this backend (fixed-rate: not a FRaZ
    /// search target).
    pub fn descriptor() -> CodecDescriptor {
        CodecDescriptor::new("zfp-rate", BoundKind::BitsPerValue)
            .with_alias("zfp-fixed-rate")
            .with_summary("ZFP-like compressor, fixed-rate baseline mode")
    }
}

#[cfg(feature = "zfp")]
impl Compressor for ZfpFixedRateBackend {
    fn name(&self) -> &str {
        "zfp-rate"
    }
    fn bound_kind(&self) -> BoundKind {
        BoundKind::BitsPerValue
    }
    fn supports_dims(&self, _dims: &Dims) -> bool {
        true
    }
    fn bound_range(&self, _dataset: &Dataset) -> (f64, f64) {
        (0.5, 32.0)
    }
    fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError> {
        fraz_zfp::compress(
            dataset,
            &ZfpConfig {
                mode: ZfpMode::FixedRate {
                    bits_per_value: error_bound,
                },
            },
        )
        .map_err(|e| match e {
            fraz_zfp::ZfpError::InvalidConfig(msg) => PressioError::InvalidBound(msg),
            other => PressioError::Codec(other.to_string()),
        })
    }
    fn decompress(&self, data: &[u8]) -> Result<Dataset, PressioError> {
        fraz_zfp::decompress(data).map_err(|e| PressioError::Codec(e.to_string()))
    }
}

/// MGARD-like backend (∞-norm or L2-norm error control; 2-D/3-D only).
#[cfg(feature = "mgard")]
#[derive(Debug, Clone)]
pub struct MgardBackend {
    norm: ErrorNorm,
}

#[cfg(feature = "mgard")]
impl MgardBackend {
    /// ∞-norm (absolute error) backend.
    pub fn infinity() -> Self {
        Self {
            norm: ErrorNorm::Infinity,
        }
    }

    /// L2-norm (RMS error) backend.
    pub fn l2() -> Self {
        Self {
            norm: ErrorNorm::L2,
        }
    }

    /// The registry metadata for the ∞-norm backend.
    pub fn infinity_descriptor() -> CodecDescriptor {
        CodecDescriptor::new("mgard", BoundKind::InfinityNorm)
            .with_dims(DimRange::new(2, 3))
            .with_summary("MGARD-like multilevel compressor, infinity-norm error control")
    }

    /// The registry metadata for the L2-norm backend.
    pub fn l2_descriptor() -> CodecDescriptor {
        CodecDescriptor::new("mgard-l2", BoundKind::L2Norm)
            .with_dims(DimRange::new(2, 3))
            .with_summary("MGARD-like multilevel compressor, L2-norm (RMS) error control")
    }
}

#[cfg(feature = "mgard")]
impl Compressor for MgardBackend {
    fn name(&self) -> &str {
        match self.norm {
            ErrorNorm::Infinity => "mgard",
            ErrorNorm::L2 => "mgard-l2",
        }
    }
    fn bound_kind(&self) -> BoundKind {
        match self.norm {
            ErrorNorm::Infinity => BoundKind::InfinityNorm,
            ErrorNorm::L2 => BoundKind::L2Norm,
        }
    }
    fn supports_dims(&self, dims: &Dims) -> bool {
        (2..=3).contains(&dims.ndims())
    }
    fn bound_range(&self, dataset: &Dataset) -> (f64, f64) {
        range_based_bounds(dataset)
    }
    fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError> {
        if !self.supports_dims(&dataset.dims) {
            return Err(PressioError::Unsupported(format!(
                "MGARD-like codec does not support {}-D data",
                dataset.dims.ndims()
            )));
        }
        let config = MgardConfig {
            tolerance: error_bound,
            norm: self.norm,
        };
        fraz_mgard::compress(dataset, &config).map_err(|e| match e {
            fraz_mgard::MgardError::InvalidConfig(msg) => PressioError::InvalidBound(msg),
            fraz_mgard::MgardError::UnsupportedDimensionality(d) => {
                PressioError::Unsupported(format!("{d}-D data"))
            }
            other => PressioError::Codec(other.to_string()),
        })
    }
    fn decompress(&self, data: &[u8]) -> Result<Dataset, PressioError> {
        fraz_mgard::decompress(data).map_err(|e| PressioError::Codec(e.to_string()))
    }
}

/// SZx-like ultra-fast backend (absolute error bound).
///
/// Blockwise constant/unpredictable classification with IEEE-754 bit
/// truncation — roughly an order of magnitude faster than the SZ-like
/// backend on both paths, at the cost of lower ratios at tight bounds.
/// Because FRaZ pays one compression per candidate bound, this backend
/// changes the economics of the whole search.
#[cfg(feature = "szx")]
#[derive(Debug, Clone)]
pub struct SzxBackend {
    config: SzxConfig,
}

#[cfg(feature = "szx")]
impl SzxBackend {
    /// Backend with default SZx settings (128-value blocks).
    pub fn new() -> Self {
        Self {
            config: SzxConfig::default(),
        }
    }

    /// The registry metadata for this backend, including its option schema.
    pub fn descriptor() -> CodecDescriptor {
        CodecDescriptor::new("szx", BoundKind::AbsoluteError)
            .with_summary("SZx-like ultra-fast blockwise-truncation compressor")
            // Mantissa truncation bounded by e behaves like a uniform
            // quantizer at scale, so the same closed form seeds it.
            .with_psnr_model(PsnrBoundModel::uniform_quantization())
            .with_option(
                OptionDescriptor::new("szx:block_size", OptionKind::U64)
                    .with_default(128u64)
                    .with_range(1.0, fraz_szx::MAX_BLOCK_SIZE as f64)
                    .with_doc("values per constant/unpredictable classification block"),
            )
    }

    /// Backend configured from an options bag (`szx:block_size`).
    pub fn from_options(options: &Options) -> Self {
        let mut config = SzxConfig::default();
        if let Some(b) = options.get_u64("szx:block_size") {
            config.block_size = Some(b as usize);
        }
        Self { config }
    }
}

#[cfg(feature = "szx")]
impl Default for SzxBackend {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(feature = "szx")]
impl Compressor for SzxBackend {
    fn name(&self) -> &str {
        "szx"
    }
    fn bound_kind(&self) -> BoundKind {
        BoundKind::AbsoluteError
    }
    fn supports_dims(&self, _dims: &Dims) -> bool {
        true
    }
    fn bound_range(&self, dataset: &Dataset) -> (f64, f64) {
        range_based_bounds(dataset)
    }
    fn compress(&self, dataset: &Dataset, error_bound: f64) -> Result<Vec<u8>, PressioError> {
        let config = SzxConfig {
            error_bound,
            ..self.config.clone()
        };
        fraz_szx::compress(dataset, &config).map_err(|e| match e {
            fraz_szx::SzxError::InvalidConfig(msg) => PressioError::InvalidBound(msg),
            other => PressioError::Codec(other.to_string()),
        })
    }
    fn decompress(&self, data: &[u8]) -> Result<Dataset, PressioError> {
        fraz_szx::decompress(data).map_err(|e| PressioError::Codec(e.to_string()))
    }
}

/// Register the built-in backends enabled by this crate's codec features
/// (all six with the default feature set: `sz`, `zfp`, `zfp-rate`, `szx`,
/// `mgard`, `mgard-l2`).
///
/// This is the only place the workspace's own codecs touch the registry;
/// everything else (examples, benches, FRaZ itself) goes through
/// [`Registry::build`] like an out-of-tree codec would.
pub fn install_builtins(registry: &mut Registry) {
    #[cfg(not(any(feature = "sz", feature = "zfp", feature = "mgard", feature = "szx")))]
    let _ = registry;
    #[cfg(feature = "sz")]
    registry
        .register(SzBackend::descriptor(), |options| {
            Ok(Box::new(SzBackend::from_options(options)))
        })
        .expect("fresh registry cannot already contain sz");
    #[cfg(feature = "zfp")]
    registry
        .register(ZfpAccuracyBackend::descriptor(), |_| {
            Ok(Box::new(ZfpAccuracyBackend))
        })
        .expect("fresh registry cannot already contain zfp");
    #[cfg(feature = "zfp")]
    registry
        .register(ZfpFixedRateBackend::descriptor(), |_| {
            Ok(Box::new(ZfpFixedRateBackend))
        })
        .expect("fresh registry cannot already contain zfp-rate");
    #[cfg(feature = "mgard")]
    registry
        .register(MgardBackend::infinity_descriptor(), |_| {
            Ok(Box::new(MgardBackend::infinity()))
        })
        .expect("fresh registry cannot already contain mgard");
    #[cfg(feature = "mgard")]
    registry
        .register(MgardBackend::l2_descriptor(), |_| {
            Ok(Box::new(MgardBackend::l2()))
        })
        .expect("fresh registry cannot already contain mgard-l2");
    #[cfg(feature = "szx")]
    registry
        .register(SzxBackend::descriptor(), |options| {
            Ok(Box::new(SzxBackend::from_options(options)))
        })
        .expect("fresh registry cannot already contain szx");
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::Dims;

    #[allow(dead_code)] // unused only in slim feature combinations
    fn smooth(dims: Dims) -> Dataset {
        let n = dims.len();
        let cols = *dims.as_slice().last().unwrap();
        let values: Vec<f32> = (0..n)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                ((c as f32 * 0.1).sin() + (r as f32 * 0.07).cos()) * 10.0
            })
            .collect();
        Dataset::from_f32("t", "f", 0, dims, values)
    }

    #[allow(dead_code)] // unused only in slim feature combinations
    fn max_error(a: &Dataset, b: &Dataset) -> f64 {
        a.values_f64()
            .iter()
            .zip(b.values_f64().iter())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[cfg(all(feature = "sz", feature = "zfp", feature = "mgard", feature = "szx"))]
    #[test]
    fn error_bounded_backends_roundtrip_within_bound() {
        let dataset = smooth(Dims::d2(40, 50));
        let backends: Vec<Box<dyn Compressor>> = vec![
            Box::new(SzBackend::new()),
            Box::new(ZfpAccuracyBackend),
            Box::new(MgardBackend::infinity()),
            Box::new(SzxBackend::new()),
        ];
        for backend in &backends {
            let outcome = backend.evaluate(&dataset, 1e-3, true).unwrap();
            let quality = outcome.quality.expect("quality requested");
            assert!(
                quality.max_abs_error <= 1e-3,
                "{}: {}",
                backend.name(),
                quality.max_abs_error
            );
            assert!(outcome.compression_ratio > 1.0, "{}", backend.name());
        }
    }

    #[cfg(feature = "sz")]
    #[test]
    fn roundtrip_preserves_data_through_trait_object() {
        let dataset = smooth(Dims::d3(8, 12, 12));
        let backend: Box<dyn Compressor> = Box::new(SzBackend::new());
        let compressed = backend.compress(&dataset, 1e-4).unwrap();
        let restored = backend.decompress(&compressed).unwrap();
        assert!(max_error(&dataset, &restored) <= 1e-4);
        assert_eq!(restored.dims, dataset.dims);
    }

    #[cfg(feature = "zfp")]
    #[test]
    fn zfp_rate_backend_controls_size_directly() {
        let dataset = smooth(Dims::d3(8, 16, 16));
        let backend = ZfpFixedRateBackend;
        let o4 = backend.evaluate(&dataset, 4.0, false).unwrap();
        let o8 = backend.evaluate(&dataset, 8.0, false).unwrap();
        assert!(o4.compressed_bytes < o8.compressed_bytes);
        // 4 bits/value on 32-bit floats is ~8:1, allowing for the header.
        assert!(
            (o4.compression_ratio - 8.0).abs() < 1.0,
            "{}",
            o4.compression_ratio
        );
        assert_eq!(backend.bound_kind(), BoundKind::BitsPerValue);
        assert_eq!(backend.bound_kind().label(), "bits per value");
    }

    #[cfg(feature = "mgard")]
    #[test]
    fn mgard_backend_rejects_1d() {
        let dataset = Dataset::from_f32("t", "f", 0, Dims::d1(64), vec![0.0; 64]);
        let backend = MgardBackend::infinity();
        assert!(!backend.supports_dims(&dataset.dims));
        assert!(matches!(
            backend.compress(&dataset, 1e-3),
            Err(PressioError::Unsupported(_))
        ));
    }

    #[cfg(all(feature = "sz", feature = "zfp", feature = "mgard", feature = "szx"))]
    #[test]
    fn bound_ranges_are_sane() {
        let dataset = smooth(Dims::d2(30, 30));
        for backend in [
            Box::new(SzBackend::new()) as Box<dyn Compressor>,
            Box::new(ZfpAccuracyBackend),
            Box::new(MgardBackend::l2()),
            Box::new(SzxBackend::new()),
        ] {
            let (lo, hi) = backend.bound_range(&dataset);
            assert!(lo > 0.0 && lo < hi, "{}: ({lo}, {hi})", backend.name());
            assert!(hi <= dataset.stats().value_range() * 1.001);
        }
        // Constant field falls back to a default range.
        let flat = Dataset::from_f32("t", "f", 0, Dims::d2(4, 4), vec![3.0; 16]);
        let (lo, hi) = SzBackend::new().bound_range(&flat);
        assert!(lo > 0.0 && hi > lo);
    }

    #[cfg(feature = "sz")]
    #[test]
    fn sz_backend_honours_options() {
        let opts = Options::new()
            .with("sz:block_size", 4u64)
            .with("sz:quant_capacity", 1024u64);
        let backend = SzBackend::from_options(&opts);
        assert_eq!(backend.config.block_size, Some(4));
        assert_eq!(backend.config.quant_capacity, 1024);
        let dataset = smooth(Dims::d2(20, 20));
        let outcome = backend.evaluate(&dataset, 1e-3, true).unwrap();
        assert!(outcome.quality.unwrap().max_abs_error <= 1e-3);
    }

    #[cfg(all(feature = "sz", feature = "zfp", feature = "mgard", feature = "szx"))]
    #[test]
    fn descriptors_agree_with_their_backends() {
        let pairs: Vec<(CodecDescriptor, Box<dyn Compressor>)> = vec![
            (SzBackend::descriptor(), Box::new(SzBackend::new())),
            (
                ZfpAccuracyBackend::descriptor(),
                Box::new(ZfpAccuracyBackend),
            ),
            (
                ZfpFixedRateBackend::descriptor(),
                Box::new(ZfpFixedRateBackend),
            ),
            (
                MgardBackend::infinity_descriptor(),
                Box::new(MgardBackend::infinity()),
            ),
            (MgardBackend::l2_descriptor(), Box::new(MgardBackend::l2())),
            (SzxBackend::descriptor(), Box::new(SzxBackend::new())),
        ];
        for (descriptor, backend) in &pairs {
            assert_eq!(descriptor.name, backend.name());
            assert_eq!(
                descriptor.bound_kind,
                backend.bound_kind(),
                "{}",
                descriptor.name
            );
            // The declared dimensionality range matches what the impl
            // actually accepts.
            for dims in [
                Dims::d1(8),
                Dims::d2(4, 4),
                Dims::d3(2, 2, 2),
                Dims::d4(2, 2, 2, 2),
            ] {
                assert_eq!(
                    descriptor.dims.supports(&dims),
                    backend.supports_dims(&dims),
                    "{} at {}-D",
                    descriptor.name,
                    dims.ndims()
                );
            }
        }
    }

    #[cfg(all(feature = "sz", feature = "zfp", feature = "szx"))]
    #[test]
    fn invalid_bounds_are_invalid_bound_errors() {
        let dataset = smooth(Dims::d2(10, 10));
        assert!(matches!(
            SzBackend::new().compress(&dataset, -1.0),
            Err(PressioError::InvalidBound(_))
        ));
        assert!(matches!(
            ZfpAccuracyBackend.compress(&dataset, 0.0),
            Err(PressioError::InvalidBound(_))
        ));
        assert!(matches!(
            ZfpFixedRateBackend.compress(&dataset, 1000.0),
            Err(PressioError::InvalidBound(_))
        ));
        assert!(matches!(
            SzxBackend::new().compress(&dataset, f64::NAN),
            Err(PressioError::InvalidBound(_))
        ));
    }

    #[cfg(feature = "szx")]
    #[test]
    fn szx_backend_roundtrips_and_honours_options() {
        let dataset = smooth(Dims::d3(8, 12, 12));
        let backend = SzxBackend::from_options(&Options::new().with("szx:block_size", 64u64));
        assert_eq!(backend.config.block_size, Some(64));
        for bound in [1e-2, 1e-5] {
            let outcome = backend.evaluate(&dataset, bound, true).unwrap();
            assert!(outcome.quality.unwrap().max_abs_error <= bound, "{bound}");
            assert!(outcome.compression_ratio > 1.0, "{bound}");
        }
        // Ultra-fast tier contract: szx must stay decompressible through the
        // trait object like every other backend.
        let compressed = backend.compress(&dataset, 1e-3).unwrap();
        let restored = backend.decompress(&compressed).unwrap();
        assert!(max_error(&dataset, &restored) <= 1e-3);
        assert_eq!(restored.dims, dataset.dims);
    }
}
