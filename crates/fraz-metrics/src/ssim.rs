//! Structural similarity (SSIM) over 2-D slices.
//!
//! The paper uses SSIM (Wang et al., 2004) to compare visual quality of
//! decompressed slices (Figs 1 and 10).  This implementation follows the
//! standard formulation: the image is scanned with a sliding window, the
//! luminance/contrast/structure statistics are computed per window, and the
//! mean over all windows is reported.  Scientific data is not 8-bit imagery,
//! so the dynamic range `L` is taken from the original slice's value range.

/// Configuration of the SSIM computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsimConfig {
    /// Window side length (the classic choice is 8; windows are square).
    pub window: usize,
    /// Window stride; 1 reproduces the dense original definition, larger
    /// strides trade accuracy for speed on large slices.
    pub stride: usize,
    /// Stabilization constant scale k1 (C1 = (k1·L)²).
    pub k1: f64,
    /// Stabilization constant scale k2 (C2 = (k2·L)²).
    pub k2: f64,
}

impl Default for SsimConfig {
    fn default() -> Self {
        Self {
            window: 8,
            stride: 4,
            k1: 0.01,
            k2: 0.03,
        }
    }
}

/// Mean SSIM between two 2-D slices stored row-major as `rows` x `cols`.
///
/// Identical slices return exactly 1.0.  Degenerate inputs (empty, smaller
/// than one window) fall back to a single window covering the whole slice.
///
/// # Panics
/// Panics if the slice lengths do not match `rows * cols`.
pub fn mean_ssim(a: &[f64], b: &[f64], rows: usize, cols: usize, config: &SsimConfig) -> f64 {
    assert_eq!(a.len(), rows * cols, "slice A shape mismatch");
    assert_eq!(b.len(), rows * cols, "slice B shape mismatch");
    if a.is_empty() {
        return 1.0;
    }

    // Dynamic range from the original slice.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in a {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    // A constant slice has zero range; fall back to its magnitude (or 1) so
    // the stabilization constants stay non-zero and identical inputs still
    // score exactly 1.
    let mut range = hi - lo;
    if range <= 0.0 {
        range = hi.abs().max(1.0);
    }
    let c1 = (config.k1 * range).powi(2);
    let c2 = (config.k2 * range).powi(2);

    let window_r = config.window.min(rows).max(1);
    let window_c = config.window.min(cols).max(1);
    let stride = config.stride.max(1);

    let mut total = 0.0;
    let mut count = 0usize;
    let mut r = 0;
    loop {
        let r0 = r.min(rows.saturating_sub(window_r));
        let mut c = 0;
        loop {
            let c0 = c.min(cols.saturating_sub(window_c));
            total += window_ssim(a, b, cols, r0, c0, window_r, window_c, c1, c2);
            count += 1;
            if c0 + window_c >= cols {
                break;
            }
            c += stride;
        }
        if r0 + window_r >= rows {
            break;
        }
        r += stride;
    }
    total / count as f64
}

#[allow(clippy::too_many_arguments)]
fn window_ssim(
    a: &[f64],
    b: &[f64],
    cols: usize,
    r0: usize,
    c0: usize,
    window_r: usize,
    window_c: usize,
    c1: f64,
    c2: f64,
) -> f64 {
    let n = (window_r * window_c) as f64;
    let mut mean_a = 0.0;
    let mut mean_b = 0.0;
    for r in r0..r0 + window_r {
        for c in c0..c0 + window_c {
            mean_a += a[r * cols + c];
            mean_b += b[r * cols + c];
        }
    }
    mean_a /= n;
    mean_b /= n;

    let mut var_a = 0.0;
    let mut var_b = 0.0;
    let mut cov = 0.0;
    for r in r0..r0 + window_r {
        for c in c0..c0 + window_c {
            let da = a[r * cols + c] - mean_a;
            let db = b[r * cols + c] - mean_b;
            var_a += da * da;
            var_b += db * db;
            cov += da * db;
        }
    }
    var_a /= n;
    var_b /= n;
    cov /= n;

    ((2.0 * mean_a * mean_b + c1) * (2.0 * cov + c2))
        / ((mean_a * mean_a + mean_b * mean_b + c1) * (var_a + var_b + c2))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(rows: usize, cols: usize) -> Vec<f64> {
        (0..rows * cols)
            .map(|i| (i % cols) as f64 + (i / cols) as f64 * 0.5)
            .collect()
    }

    #[test]
    fn identical_slices_score_one() {
        let a = ramp(32, 32);
        let s = mean_ssim(&a, &a, 32, 32, &SsimConfig::default());
        assert!((s - 1.0).abs() < 1e-12);
    }

    #[test]
    fn small_perturbation_scores_near_one() {
        let a = ramp(32, 32);
        let b: Vec<f64> = a.iter().map(|v| v + 1e-6).collect();
        let s = mean_ssim(&a, &b, 32, 32, &SsimConfig::default());
        assert!(s > 0.999);
    }

    #[test]
    fn heavy_noise_scores_lower_than_light_noise() {
        let a = ramp(64, 64);
        let light: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.05 * ((i * 31 % 7) as f64 - 3.0))
            .collect();
        let heavy: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, v)| v + 5.0 * ((i * 31 % 7) as f64 - 3.0))
            .collect();
        let s_light = mean_ssim(&a, &light, 64, 64, &SsimConfig::default());
        let s_heavy = mean_ssim(&a, &heavy, 64, 64, &SsimConfig::default());
        assert!(s_light > s_heavy);
        assert!(s_heavy < 0.9);
    }

    #[test]
    fn structural_destruction_scores_low() {
        let a = ramp(32, 32);
        let mut b = a.clone();
        b.reverse();
        let s = mean_ssim(&a, &b, 32, 32, &SsimConfig::default());
        assert!(s < 0.5, "reversed slice scored {s}");
    }

    #[test]
    fn small_slices_are_handled() {
        let a = vec![1.0, 2.0, 3.0, 4.0];
        let s = mean_ssim(&a, &a, 2, 2, &SsimConfig::default());
        assert!((s - 1.0).abs() < 1e-12);
        let one = vec![5.0];
        assert!((mean_ssim(&one, &one, 1, 1, &SsimConfig::default()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slice_scores_one() {
        assert_eq!(mean_ssim(&[], &[], 0, 0, &SsimConfig::default()), 1.0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_panics() {
        let _ = mean_ssim(&[1.0, 2.0], &[1.0, 2.0], 3, 3, &SsimConfig::default());
    }

    #[test]
    fn stride_one_and_four_agree_roughly() {
        let a = ramp(40, 40);
        let b: Vec<f64> = a
            .iter()
            .enumerate()
            .map(|(i, v)| v + 0.2 * ((i % 5) as f64 - 2.0))
            .collect();
        let dense = mean_ssim(
            &a,
            &b,
            40,
            40,
            &SsimConfig {
                stride: 1,
                ..Default::default()
            },
        );
        let sparse = mean_ssim(
            &a,
            &b,
            40,
            40,
            &SsimConfig {
                stride: 4,
                ..Default::default()
            },
        );
        assert!(
            (dense - sparse).abs() < 0.05,
            "dense={dense} sparse={sparse}"
        );
    }
}
