//! Compression-quality metrics used throughout the FRaZ evaluation.
//!
//! The paper reports, per compressed field: compression ratio and bit-rate
//! (Figs 7–9), PSNR / RMSE / maximum error (Figs 1, 9, 10), SSIM over a 2-D
//! slice (Figs 1, 10) and the lag-1 autocorrelation of the pointwise error
//! (Figs 1, 10).  This crate computes all of them from an original dataset, a
//! reconstructed dataset and the compressed byte count.
//!
//! * [`error_stats`] — max error, MSE, RMSE, PSNR.
//! * [`ssim`] — windowed structural similarity on 2-D slices.
//! * [`acf`] — autocorrelation of the error field.
//! * [`ratio`] — compression ratio and bit-rate bookkeeping.
//!
//! [`QualityReport::evaluate`] bundles everything into a single serializable
//! record, which the experiment binaries append to their JSON output.

pub mod acf;
pub mod error_stats;
pub mod ratio;
pub mod ssim;

use serde::{Deserialize, Serialize};

use fraz_data::Dataset;

/// All quality metrics for one (original, reconstructed, compressed-size)
/// triple.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityReport {
    /// `s(D) / s(D')` — the paper's ρ.
    pub compression_ratio: f64,
    /// Bits per data point after compression.
    pub bit_rate: f64,
    /// `max_i |d_i - d'_i|`.
    pub max_abs_error: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Peak signal-to-noise ratio in dB (normalized by the value range).
    pub psnr: f64,
    /// Mean SSIM over the central 2-D slice.
    pub ssim: f64,
    /// Lag-1 autocorrelation of the pointwise error.
    pub acf_error: f64,
    /// Number of data points.
    pub num_points: usize,
    /// Original size in bytes.
    pub original_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
}

impl QualityReport {
    /// Compute every metric for `original` vs `reconstructed` given the
    /// compressed payload size in bytes.
    ///
    /// # Panics
    /// Panics if the two datasets have different lengths.
    pub fn evaluate(original: &Dataset, reconstructed: &Dataset, compressed_bytes: usize) -> Self {
        assert_eq!(
            original.len(),
            reconstructed.len(),
            "original and reconstructed datasets must have the same length"
        );
        let a = original.values_f64();
        let b = reconstructed.values_f64();
        let stats = error_stats::ErrorStats::compute(&a, &b);
        let original_bytes = original.byte_size();
        let (rows, cols, slice_a) = original.slice2d(original.dims.as_slice()[0] / 2);
        let (_, _, slice_b) = reconstructed.slice2d(original.dims.as_slice()[0] / 2);
        let ssim = ssim::mean_ssim(&slice_a, &slice_b, rows, cols, &ssim::SsimConfig::default());
        let errors: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x - y).collect();
        Self {
            compression_ratio: ratio::compression_ratio(original_bytes, compressed_bytes),
            bit_rate: ratio::bit_rate(compressed_bytes, original.len()),
            max_abs_error: stats.max_abs_error,
            rmse: stats.rmse,
            psnr: stats.psnr,
            ssim,
            acf_error: acf::autocorrelation(&errors, 1),
            num_points: original.len(),
            original_bytes,
            compressed_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fraz_data::{Dataset, Dims};

    fn make_pair(n: usize, noise: f64) -> (Dataset, Dataset) {
        let original: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin() * 10.0).collect();
        let reconstructed: Vec<f32> = original
            .iter()
            .enumerate()
            .map(|(i, &v)| v + noise as f32 * if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        (
            Dataset::from_f32("t", "f", 0, Dims::d1(n), original),
            Dataset::from_f32("t", "f", 0, Dims::d1(n), reconstructed),
        )
    }

    #[test]
    fn perfect_reconstruction_has_infinite_psnr_and_unit_ssim() {
        let (a, _) = make_pair(1000, 0.0);
        let report = QualityReport::evaluate(&a, &a, 500);
        assert_eq!(report.max_abs_error, 0.0);
        assert_eq!(report.rmse, 0.0);
        assert!(report.psnr.is_infinite());
        assert!((report.ssim - 1.0).abs() < 1e-9);
        assert_eq!(report.compression_ratio, 8.0);
        assert_eq!(report.bit_rate, 4.0);
    }

    #[test]
    fn noisier_reconstruction_scores_worse() {
        let (a, b_small) = make_pair(4096, 0.01);
        let (_, b_large) = make_pair(4096, 0.5);
        let small = QualityReport::evaluate(&a, &b_small, 1024);
        let large = QualityReport::evaluate(&a, &b_large, 1024);
        assert!(small.psnr > large.psnr);
        assert!(small.rmse < large.rmse);
        assert!(small.max_abs_error < large.max_abs_error);
        assert!(small.ssim >= large.ssim);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn mismatched_lengths_panic() {
        let a = Dataset::from_f32("t", "f", 0, Dims::d1(10), vec![0.0; 10]);
        let b = Dataset::from_f32("t", "f", 0, Dims::d1(5), vec![0.0; 5]);
        let _ = QualityReport::evaluate(&a, &b, 1);
    }

    #[test]
    fn report_fields_are_consistent() {
        let (a, b) = make_pair(2048, 0.1);
        let report = QualityReport::evaluate(&a, &b, 2048);
        assert_eq!(report.num_points, 2048);
        assert_eq!(report.original_bytes, 2048 * 4);
        assert_eq!(report.compressed_bytes, 2048);
        assert!((report.compression_ratio - 4.0).abs() < 1e-12);
        assert!((report.bit_rate - 8.0).abs() < 1e-12);
        assert!(report.max_abs_error >= report.rmse);
    }
}
