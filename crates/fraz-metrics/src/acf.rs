//! Autocorrelation of the compression-error field.
//!
//! The paper reports `ACF(error)` — the lag-1 autocorrelation of the
//! pointwise error `d_i − d'_i` — as a fidelity indicator alongside PSNR and
//! SSIM (Figs 1 and 10): error that is *white* (ACF near zero) distorts
//! downstream analyses less than error that is spatially correlated.

/// Sample autocorrelation of `series` at the given `lag`.
///
/// Returns 0 for series shorter than `lag + 2` or with zero variance (a
/// constant error field — including the all-zero error of a lossless
/// reconstruction — has no meaningful autocorrelation).
pub fn autocorrelation(series: &[f64], lag: usize) -> f64 {
    if series.len() < lag + 2 {
        return 0.0;
    }
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let denom: f64 = series.iter().map(|&v| (v - mean) * (v - mean)).sum();
    if denom == 0.0 {
        return 0.0;
    }
    let numer: f64 = (0..n - lag)
        .map(|i| (series[i] - mean) * (series[i + lag] - mean))
        .sum();
    numer / denom
}

/// Autocorrelation function for lags `1..=max_lag`.
pub fn acf(series: &[f64], max_lag: usize) -> Vec<f64> {
    (1..=max_lag)
        .map(|lag| autocorrelation(series, lag))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_series_has_zero_acf() {
        assert_eq!(autocorrelation(&[3.0; 100], 1), 0.0);
        assert_eq!(autocorrelation(&[0.0; 100], 1), 0.0);
    }

    #[test]
    fn short_series_is_zero() {
        assert_eq!(autocorrelation(&[1.0, 2.0], 5), 0.0);
        assert_eq!(autocorrelation(&[], 1), 0.0);
    }

    #[test]
    fn alternating_series_has_negative_lag1() {
        let series: Vec<f64> = (0..1000)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let r = autocorrelation(&series, 1);
        assert!(r < -0.9, "lag-1 ACF of alternating series was {r}");
    }

    #[test]
    fn smooth_series_has_high_lag1() {
        let series: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let r = autocorrelation(&series, 1);
        assert!(r > 0.95, "lag-1 ACF of smooth series was {r}");
    }

    #[test]
    fn white_noise_has_low_acf() {
        // Deterministic pseudo-noise via a simple LCG.
        let mut state = 123456789u64;
        let series: Vec<f64> = (0..10_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
            })
            .collect();
        let r = autocorrelation(&series, 1);
        assert!(r.abs() < 0.05, "lag-1 ACF of white noise was {r}");
    }

    #[test]
    fn acf_returns_requested_lags() {
        let series: Vec<f64> = (0..500).map(|i| (i as f64 * 0.1).sin()).collect();
        let values = acf(&series, 5);
        assert_eq!(values.len(), 5);
        assert_eq!(values[0], autocorrelation(&series, 1));
        assert_eq!(values[4], autocorrelation(&series, 5));
    }

    #[test]
    fn lag_zero_equivalent_is_one() {
        let series: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // autocorrelation at lag 0 is not exposed, but lag 1 of a linear ramp
        // should be close to 1.
        assert!(autocorrelation(&series, 1) > 0.95);
    }
}
