//! Compression-ratio and bit-rate bookkeeping.
//!
//! The paper's central quantity is the compression ratio
//! `ρ = s(D) / s(D')` (original bytes over compressed bytes); rate-distortion
//! plots use the *bit rate*, the average number of bits per data point after
//! compression.  The two are related by `bit_rate = bits_per_value / ρ`.

/// `original_bytes / compressed_bytes`.  A zero-byte compressed size (never
/// produced by the codecs, but possible in degenerate tests) yields infinity;
/// a zero-byte original yields 0.
pub fn compression_ratio(original_bytes: usize, compressed_bytes: usize) -> f64 {
    if compressed_bytes == 0 {
        if original_bytes == 0 {
            0.0
        } else {
            f64::INFINITY
        }
    } else {
        original_bytes as f64 / compressed_bytes as f64
    }
}

/// Average number of bits used per data point after compression.
pub fn bit_rate(compressed_bytes: usize, num_points: usize) -> f64 {
    if num_points == 0 {
        0.0
    } else {
        compressed_bytes as f64 * 8.0 / num_points as f64
    }
}

/// Convert a compression ratio into a bit rate for elements of
/// `bytes_per_value` bytes (4 for `f32`, 8 for `f64`).
pub fn ratio_to_bit_rate(ratio: f64, bytes_per_value: usize) -> f64 {
    if ratio <= 0.0 {
        0.0
    } else {
        bytes_per_value as f64 * 8.0 / ratio
    }
}

/// Convert a bit rate back into a compression ratio.
pub fn bit_rate_to_ratio(bit_rate: f64, bytes_per_value: usize) -> f64 {
    if bit_rate <= 0.0 {
        f64::INFINITY
    } else {
        bytes_per_value as f64 * 8.0 / bit_rate
    }
}

/// Accumulates sizes over many buffers (e.g. all fields of a time-step) and
/// reports the aggregate ratio, as done for the whole-dataset numbers in the
/// evaluation.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RatioAccumulator {
    /// Total original bytes seen.
    pub original_bytes: u64,
    /// Total compressed bytes seen.
    pub compressed_bytes: u64,
    /// Total number of data points seen.
    pub num_points: u64,
}

impl RatioAccumulator {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one compressed buffer.
    pub fn record(&mut self, original_bytes: usize, compressed_bytes: usize, num_points: usize) {
        self.original_bytes += original_bytes as u64;
        self.compressed_bytes += compressed_bytes as u64;
        self.num_points += num_points as u64;
    }

    /// Aggregate compression ratio so far.
    pub fn ratio(&self) -> f64 {
        compression_ratio(self.original_bytes as usize, self.compressed_bytes as usize)
    }

    /// Aggregate bit rate so far.
    pub fn bit_rate(&self) -> f64 {
        bit_rate(self.compressed_bytes as usize, self.num_points as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ratio() {
        assert_eq!(compression_ratio(1000, 100), 10.0);
        assert_eq!(compression_ratio(0, 0), 0.0);
        assert!(compression_ratio(10, 0).is_infinite());
    }

    #[test]
    fn basic_bit_rate() {
        // 4-byte floats compressed 8:1 -> 4 bits/value.
        assert_eq!(bit_rate(500, 1000), 4.0);
        assert_eq!(bit_rate(0, 0), 0.0);
    }

    #[test]
    fn ratio_bit_rate_conversions_are_inverse() {
        for ratio in [1.0, 2.0, 10.0, 50.0, 85.0, 250.0] {
            let br = ratio_to_bit_rate(ratio, 4);
            assert!((bit_rate_to_ratio(br, 4) - ratio).abs() < 1e-9);
        }
        assert_eq!(ratio_to_bit_rate(10.0, 4), 3.2);
        assert_eq!(ratio_to_bit_rate(0.0, 4), 0.0);
        assert!(bit_rate_to_ratio(0.0, 4).is_infinite());
    }

    #[test]
    fn accumulator_aggregates() {
        let mut acc = RatioAccumulator::new();
        acc.record(4000, 1000, 1000);
        acc.record(4000, 100, 1000);
        assert!((acc.ratio() - 8000.0 / 1100.0).abs() < 1e-9);
        assert!((acc.bit_rate() - 1100.0 * 8.0 / 2000.0).abs() < 1e-9);
    }
}
