//! Pointwise error statistics: max error, MSE, RMSE and PSNR.

/// Error statistics between an original and a reconstructed field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorStats {
    /// `max_i |d_i - d'_i|` — the quantity bounded by an absolute error
    /// bound.
    pub max_abs_error: f64,
    /// Mean squared error.
    pub mse: f64,
    /// Root mean squared error.
    pub rmse: f64,
    /// Peak signal-to-noise ratio in dB, using the *value range* of the
    /// original data as the peak (the convention used by SDRBench, SZ and the
    /// FRaZ paper: `PSNR = 20·log10((dmax − dmin)/rmse)`).
    pub psnr: f64,
    /// Value range `dmax - dmin` of the original data.
    pub value_range: f64,
}

impl ErrorStats {
    /// Compute the statistics.  Empty inputs yield zeros (and infinite PSNR).
    ///
    /// # Panics
    /// Panics if the slices have different lengths.
    pub fn compute(original: &[f64], reconstructed: &[f64]) -> Self {
        assert_eq!(original.len(), reconstructed.len());
        if original.is_empty() {
            return Self {
                max_abs_error: 0.0,
                mse: 0.0,
                rmse: 0.0,
                psnr: f64::INFINITY,
                value_range: 0.0,
            };
        }
        let mut max_abs_error = 0.0f64;
        let mut sq_sum = 0.0f64;
        let mut dmin = f64::INFINITY;
        let mut dmax = f64::NEG_INFINITY;
        for (&a, &b) in original.iter().zip(reconstructed.iter()) {
            let diff = a - b;
            max_abs_error = max_abs_error.max(diff.abs());
            sq_sum += diff * diff;
            dmin = dmin.min(a);
            dmax = dmax.max(a);
        }
        let mse = sq_sum / original.len() as f64;
        let rmse = mse.sqrt();
        let value_range = dmax - dmin;
        let psnr = psnr_from_rmse(value_range, rmse);
        Self {
            max_abs_error,
            mse,
            rmse,
            psnr,
            value_range,
        }
    }
}

/// `PSNR = 20·log10(range / rmse)`; infinite when the reconstruction is
/// exact, 0 when the original field is constant and the error is not.
pub fn psnr_from_rmse(value_range: f64, rmse: f64) -> f64 {
    if rmse == 0.0 {
        f64::INFINITY
    } else if value_range <= 0.0 {
        0.0
    } else {
        20.0 * (value_range / rmse).log10()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_error() {
        let a = vec![1.0, 2.0, 3.0];
        let s = ErrorStats::compute(&a, &a);
        assert_eq!(s.max_abs_error, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert!(s.psnr.is_infinite());
        assert_eq!(s.value_range, 2.0);
    }

    #[test]
    fn known_values() {
        let a = vec![0.0, 0.0, 0.0, 0.0];
        let b = vec![1.0, -1.0, 1.0, -1.0];
        let s = ErrorStats::compute(&a, &b);
        assert_eq!(s.max_abs_error, 1.0);
        assert_eq!(s.mse, 1.0);
        assert_eq!(s.rmse, 1.0);
        // Constant original: range 0 -> PSNR defined as 0.
        assert_eq!(s.psnr, 0.0);
    }

    #[test]
    fn psnr_formula() {
        // range 100, rmse 1 -> 40 dB.
        assert!((psnr_from_rmse(100.0, 1.0) - 40.0).abs() < 1e-12);
        // range 100, rmse 0.01 -> 80 dB.
        assert!((psnr_from_rmse(100.0, 0.01) - 80.0).abs() < 1e-9);
    }

    #[test]
    fn psnr_decreases_with_error() {
        let a: Vec<f64> = (0..1000).map(|i| (i as f64 * 0.01).sin()).collect();
        let small: Vec<f64> = a.iter().map(|v| v + 1e-4).collect();
        let large: Vec<f64> = a.iter().map(|v| v + 1e-2).collect();
        assert!(ErrorStats::compute(&a, &small).psnr > ErrorStats::compute(&a, &large).psnr + 30.0);
    }

    #[test]
    fn empty_input() {
        let s = ErrorStats::compute(&[], &[]);
        assert_eq!(s.max_abs_error, 0.0);
        assert!(s.psnr.is_infinite());
    }

    #[test]
    #[should_panic]
    fn length_mismatch_panics() {
        let _ = ErrorStats::compute(&[1.0], &[1.0, 2.0]);
    }
}
