//! Storage-budget use case (paper §II-B, first use case).
//!
//! A climate campaign produces a CESM-like archive that must fit inside a
//! fixed storage allocation (think of the 50 TB / project default on Summit,
//! scaled down here).  The required compression ratio follows directly from
//! the archive size and the allocation; FRaZ then tunes every field of every
//! time-step to that ratio with the parallel orchestrator, reusing each
//! field's previous-time-step bound as a prediction.
//!
//! Run with:
//! ```text
//! cargo run --release --example climate_archive
//! ```

use fraz::core::{Orchestrator, OrchestratorConfig, SearchConfig};
use fraz::data::synthetic;
use fraz::data::Dataset;

fn main() {
    // A small CESM-like archive: 6 fields x 4 time-steps of a 96x192 grid.
    let app = synthetic::cesm(96, 192, 4, 7);
    let fields: Vec<(String, Vec<Dataset>)> = app
        .field_names()
        .into_iter()
        .map(|name| (name.clone(), app.series(&name)))
        .collect();
    let archive_bytes: usize = fields
        .iter()
        .map(|(_, series)| series.iter().map(|d| d.byte_size()).sum::<usize>())
        .sum();

    // The storage allocation for this (scaled-down) campaign.
    let storage_budget_bytes = archive_bytes / 12;
    let target_ratio = archive_bytes as f64 / storage_budget_bytes as f64;
    println!("archive size    : {:.2} MB", archive_bytes as f64 / 1e6);
    println!(
        "storage budget  : {:.2} MB",
        storage_budget_bytes as f64 / 1e6
    );
    println!("required ratio  : {target_ratio:.1}:1");
    println!();

    // Tune every field to the required ratio (±10 %), capping the error at
    // 1% of each field's value range so the archive stays scientifically
    // useful.
    let search = SearchConfig::new(target_ratio, 0.1)
        .with_regions(6)
        .with_threads(2);
    let orchestrator = Orchestrator::new(
        "sz",
        OrchestratorConfig {
            total_workers: 8,
            ..OrchestratorConfig::new(search)
        },
    )
    .expect("sz backend registered");

    let outcome = orchestrator.run_application(&fields);

    let mut compressed_total = 0usize;
    println!(
        "{:<10} {:>10} {:>12} {:>10} {:>9}",
        "field", "steps ok", "ratio(mean)", "retrains", "time"
    );
    for series in &outcome.fields {
        let mean_ratio: f64 = series
            .steps
            .iter()
            .map(|s| s.best.compression_ratio)
            .sum::<f64>()
            / series.steps.len() as f64;
        compressed_total += series
            .steps
            .iter()
            .map(|s| s.best.compressed_bytes)
            .sum::<usize>();
        println!(
            "{:<10} {:>7}/{:<2} {:>11.1}x {:>10} {:>8.2?}",
            series.field,
            series.steps.iter().filter(|s| s.feasible).count(),
            series.steps.len(),
            mean_ratio,
            series.retrain_steps.len(),
            series.elapsed
        );
    }
    println!();
    println!(
        "compressed archive : {:.2} MB ({})",
        compressed_total as f64 / 1e6,
        if compressed_total <= storage_budget_bytes * 11 / 10 {
            "fits the allocation"
        } else {
            "OVER the allocation — relax the error ceiling or the ratio"
        }
    );
    println!("wall-clock time    : {:.2?}", outcome.elapsed);
    println!("longest field      : {:.2?}", outcome.longest_field_time());
}
