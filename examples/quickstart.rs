//! Quick start: fixed-ratio compression of one field with one compressor.
//!
//! Generates a small hurricane-like 3-D field, asks FRaZ for a 20:1
//! compression ratio within 10 % using the SZ-like backend, and prints the
//! error bound FRaZ recommends along with the achieved ratio and quality.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use fraz::core::{FixedRatioSearch, SearchConfig};
use fraz::data::synthetic;
use fraz::pressio::registry;
use fraz::Options;

fn main() {
    // 1. A dataset: one field at one time-step.  Swap this for
    //    `fraz::data::io::read_raw(...)` to use a real SDRBench file.
    let app = synthetic::hurricane(16, 32, 32, 1, 2024);
    let dataset = app.field("TCf", 0);
    println!("dataset: {dataset}");
    println!("original size: {} bytes", dataset.byte_size());

    // 2. A compressor behind the uniform abstraction.  The registry knows
    //    what each codec is and which options it takes — ask before building.
    let descriptor = registry::describe("sz").expect("sz backend is registered");
    println!("codec: {descriptor}");
    for option in &descriptor.options {
        println!("  option {} ({}): {}", option.key, option.kind, option.doc);
    }
    // Construction validates the options bag: a typo'd key or a mistyped
    // value is a RegistryError with a did-you-mean hint, never ignored.
    let options = Options::new().with("sz:block_size", 8u64);
    for key in options.diff(&descriptor.default_options()) {
        println!("  overriding {key} = {}", options.get(key).unwrap());
    }
    let compressor = registry::build("sz", &options).expect("valid options");

    // 3. The fixed-ratio request: 20:1, within 10 %.
    let target_ratio = 20.0;
    let tolerance = 0.10;
    let config = SearchConfig::new(target_ratio, tolerance);
    let search = FixedRatioSearch::new(compressor, config);

    // 4. Run the search.
    let outcome = search.run(&dataset);

    println!();
    println!(
        "target ratio          : {target_ratio}:1 (±{:.0}%)",
        tolerance * 100.0
    );
    println!("feasible              : {}", outcome.feasible);
    println!("recommended bound     : {:.6e}", outcome.error_bound);
    println!(
        "achieved ratio        : {:.2}:1",
        outcome.best.compression_ratio
    );
    println!(
        "bit rate              : {:.3} bits/value",
        outcome.best.bit_rate
    );
    println!("compressor calls      : {}", outcome.evaluations);
    println!("search time           : {:.2?}", outcome.elapsed);
    if let Some(quality) = &outcome.best.quality {
        println!("max abs error         : {:.6e}", quality.max_abs_error);
        println!("PSNR                  : {:.2} dB", quality.psnr);
        println!("SSIM                  : {:.4}", quality.ssim);
        println!("ACF(error)            : {:.4}", quality.acf_error);
    }

    // 5. The recommended bound can now be used directly, without FRaZ, for
    //    any data with similar characteristics (e.g. the next time-steps).
    let compressed = search
        .compressor()
        .compress(&dataset, outcome.error_bound)
        .expect("recommended bound compresses");
    println!();
    println!(
        "re-compressing with the recommended bound: {} -> {} bytes ({:.2}:1)",
        dataset.byte_size(),
        compressed.len(),
        dataset.byte_size() as f64 / compressed.len() as f64
    );
}
