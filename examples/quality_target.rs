//! Fixed-quality compression (the paper's first future-work item, §VII).
//!
//! Instead of a target ratio, the user states the quality their analysis
//! needs — e.g. "SSIM of at least 0.95", the kind of threshold Baker et al.
//! established for climate data — and FRaZ finds the *most compressive*
//! error bound that still meets it.
//!
//! Run with:
//! ```text
//! cargo run --release --example quality_target
//! ```

use fraz::core::{FixedQualitySearch, QualityMetric, QualitySearchConfig};
use fraz::data::synthetic;
use fraz::pressio::registry;

fn main() {
    let app = synthetic::cesm(96, 192, 1, 31);
    let dataset = app.field("CLDHGH", 0);
    println!("dataset: {dataset}\n");

    let targets = [
        QualityMetric::SsimAtLeast(0.95),
        QualityMetric::PsnrAtLeast(60.0),
        QualityMetric::MaxErrorAtMost(dataset.stats().value_range() * 1e-3),
    ];

    println!(
        "{:<28} {:>10} {:>9} {:>9} {:>8} {:>7}",
        "quality target", "ratio", "PSNR", "SSIM", "max err", "calls"
    );
    for metric in targets {
        let search = FixedQualitySearch::new(
            registry::build_default("sz").expect("sz backend registered"),
            QualitySearchConfig::new(metric),
        );
        let outcome = search.run(&dataset);
        let q = outcome.best.quality.as_ref().expect("quality measured");
        println!(
            "{:<28} {:>9.1}x {:>9.2} {:>9.4} {:>8.2e} {:>7}",
            metric.describe(),
            outcome.best.compression_ratio,
            q.psnr,
            q.ssim,
            q.max_abs_error,
            outcome.evaluations,
        );
        if !outcome.satisfiable {
            println!("    (target could not be satisfied by this compressor)");
        }
    }
    println!();
    println!("Each row is the largest compression the SZ-like backend can deliver while still");
    println!("meeting that row's quality constraint.");
}
