//! Best-fit compressor selection at a fixed compressed size (paper §II-B,
//! second use case; a miniature of Fig. 10).
//!
//! When the compressed size is fixed (say 30:1), the interesting question is
//! which compressor preserves the science best at that size.  Without
//! fixed-ratio support users resort to trial-and-error per compressor; with
//! FRaZ each error-bounded compressor is simply asked for the same ratio and
//! the reconstructions are compared — alongside ZFP's built-in fixed-rate
//! mode, the existing alternative the paper argues against.
//!
//! Run with:
//! ```text
//! cargo run --release --example compressor_comparison
//! ```

use fraz::core::{FixedRatioSearch, SearchConfig};
use fraz::data::synthetic;
use fraz::data::DType;
use fraz::pressio::registry;

fn main() {
    let app = synthetic::nyx(24, 24, 24, 1, 5);
    let dataset = app.field("temperature", 0);
    let target_ratio = 30.0;
    println!("dataset      : {dataset}");
    println!("target ratio : {target_ratio}:1 (±10%)");
    println!();
    println!(
        "{:<14} {:>9} {:>10} {:>9} {:>8} {:>10} {:>9}",
        "compressor", "ratio", "max err", "PSNR", "SSIM", "ACF(err)", "calls"
    );

    // Every error-bounded compressor in the registry, tuned by FRaZ.  The
    // list comes from the codecs' own descriptors, so a codec registered by
    // a third party at startup would automatically join this comparison.
    for name in registry::error_bounded_names() {
        let descriptor = registry::describe(&name).expect("listed codecs have descriptors");
        if !descriptor.dims.supports(&dataset.dims) {
            continue;
        }
        let backend = registry::build_default(&name).expect("registered backend");
        let config = SearchConfig::new(target_ratio, 0.1)
            .with_regions(6)
            .with_threads(3);
        let outcome = FixedRatioSearch::new(backend, config).run(&dataset);
        let q = outcome
            .best
            .quality
            .as_ref()
            .expect("final quality measured");
        println!(
            "{:<14} {:>8.1}x {:>10.3e} {:>8.2} {:>8.4} {:>10.4} {:>9}",
            format!("{name} (FRaZ)"),
            outcome.best.compression_ratio,
            q.max_abs_error,
            q.psnr,
            q.ssim,
            q.acf_error,
            outcome.evaluations,
        );
    }

    // ZFP's built-in fixed-rate mode at the same ratio (the baseline).
    let rate_backend = registry::build_default("zfp-rate").expect("registered backend");
    let bits_per_value = DType::F32.byte_width() as f64 * 8.0 / target_ratio;
    let outcome = rate_backend
        .evaluate(&dataset, bits_per_value, true)
        .expect("fixed-rate compression succeeds");
    let q = outcome.quality.as_ref().unwrap();
    println!(
        "{:<14} {:>8.1}x {:>10.3e} {:>8.2} {:>8.4} {:>10.4} {:>9}",
        "zfp-rate", outcome.compression_ratio, q.max_abs_error, q.psnr, q.ssim, q.acf_error, 1,
    );

    println!();
    println!(
        "Expectation from the paper: the FRaZ-tuned error-bounded modes deliver higher PSNR/SSIM"
    );
    println!("than the fixed-rate mode at the same compression ratio.");
}
