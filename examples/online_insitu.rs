//! Online / in-situ fixed-ratio compression (the paper's second future-work
//! item, §VII).
//!
//! A running simulation cannot afford a full search on every output step.
//! The [`OnlineController`] calibrates once, then compresses each arriving
//! step exactly once, nudging the error bound between steps to hold the
//! target ratio, and only re-searches when the ratio drifts badly.
//!
//! Run with:
//! ```text
//! cargo run --release --example online_insitu
//! ```

use fraz::core::{OnlineController, OnlineControllerConfig};
use fraz::data::synthetic;
use fraz::pressio::registry;

fn main() {
    // A simulation emitting 10 steps of a 3-D field.
    let steps = 10usize;
    let app = synthetic::nyx(32, 32, 32, steps, 12);
    let target_ratio = 16.0;

    let mut config = OnlineControllerConfig::new(target_ratio, 0.1);
    // Never allow more than 5% of the value range as pointwise error (loose
    // enough that the 16:1 target stays feasible on this field).
    config.max_error_bound = Some(app.field("temperature", 0).stats().value_range() * 0.05);
    let mut controller = OnlineController::new(
        registry::build_default("sz").expect("sz backend registered"),
        config,
    );

    println!(
        "in-situ stream: {} steps, target {target_ratio}:1 (±10%)\n",
        steps
    );
    println!(
        "{:>5} {:>12} {:>9} {:>10} {:>13} {:>8}",
        "step", "bound", "ratio", "on target", "compressions", "time"
    );
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    for t in 0..steps {
        let frame = app.field("temperature", t);
        total_in += frame.byte_size();
        let (compressed, report) = controller.compress_step(&frame);
        total_out += compressed.len();
        println!(
            "{:>5} {:>12.4e} {:>8.1}x {:>10} {:>13} {:>7.0?}",
            report.step,
            report.error_bound,
            report.compression_ratio,
            report.on_target,
            report.compressions,
            report.elapsed,
        );
    }
    println!();
    println!(
        "on-target steps          : {:.0}%",
        controller.on_target_rate() * 100.0
    );
    println!(
        "mean compressions / step : {:.2} (1.0 is the steady-state ideal)",
        controller.mean_compressions_per_step()
    );
    println!(
        "stream compression ratio : {:.1}:1",
        total_in as f64 / total_out as f64
    );
}
