//! I/O-bandwidth matching use case (paper §II-B, third use case).
//!
//! Light-source instruments such as LCLS-II acquire data far faster than the
//! storage system can absorb it (250 GB/s produced vs 25 GB/s of storage
//! bandwidth), so the data must be compressed by at least the bandwidth
//! ratio *on the fly*.  This example simulates such a stream: the required
//! ratio is derived from the two bandwidths, FRaZ tunes the bound on the
//! first frame, and subsequent frames reuse the previous bound as a
//! prediction so the steady-state cost is a single compression per frame.
//!
//! Run with:
//! ```text
//! cargo run --release --example instrument_stream
//! ```

use std::time::Instant;

use fraz::core::{FixedRatioSearch, SearchConfig};
use fraz::data::synthetic;
use fraz::pressio::registry;

fn main() {
    // Bandwidths (scaled-down stand-ins for the LCLS-II numbers).
    let acquisition_gbps = 250.0;
    let storage_gbps = 25.0;
    let target_ratio = acquisition_gbps / storage_gbps;
    println!("acquisition bandwidth : {acquisition_gbps} GB/s");
    println!("storage bandwidth     : {storage_gbps} GB/s");
    println!("required ratio        : {target_ratio:.0}:1");
    println!();

    // A stream of detector-like frames: the NYX generator's 3-D density
    // field evolves smoothly between "shots".
    let frames = 6usize;
    let app = synthetic::nyx(24, 24, 24, frames, 99);

    let compressor = registry::build_default("zfp").expect("zfp backend registered");
    let config = SearchConfig::new(target_ratio, 0.1)
        .with_regions(6)
        .with_threads(3);
    let search = FixedRatioSearch::new(compressor, config);

    let mut prediction: Option<f64> = None;
    let mut total_in = 0usize;
    let mut total_out = 0usize;
    println!(
        "{:>5} {:>12} {:>10} {:>10} {:>9} {:>8}",
        "frame", "bound", "ratio", "feasible", "calls", "time"
    );
    for t in 0..frames {
        let frame = app.field("baryon_density", t);
        let start = Instant::now();
        let outcome = search.run_with_prediction(&frame, prediction);
        let elapsed = start.elapsed();
        total_in += frame.byte_size();
        total_out += outcome.best.compressed_bytes;
        if outcome.feasible {
            prediction = Some(outcome.error_bound);
        }
        println!(
            "{:>5} {:>12.4e} {:>9.1}x {:>10} {:>9} {:>7.0?}",
            t,
            outcome.error_bound,
            outcome.best.compression_ratio,
            outcome.feasible,
            outcome.evaluations,
            elapsed
        );
    }

    let achieved = total_in as f64 / total_out as f64;
    println!();
    println!("stream ratio achieved : {achieved:.1}:1");
    println!(
        "effective storage load: {:.1} GB/s ({} the {storage_gbps} GB/s budget)",
        acquisition_gbps / achieved,
        if acquisition_gbps / achieved <= storage_gbps * 1.1 {
            "within"
        } else {
            "OVER"
        }
    );
}
