#!/usr/bin/env python3
"""Guard the committed bench baselines against large perf regressions.

Compares one benchmark row of a freshly recorded JSONL file (produced by a
`FRAZ_BENCH_SMOKE=1 FRAZ_BENCH_RECORD_DIR=... cargo bench` run; see
`vendor/criterion`) against the committed row in `baselines/`, and fails if
throughput dropped by more than the tolerated fraction.

The default tolerance is deliberately loose (40%): CI machines are noisy and
the smoke run takes a single sample, so this only catches real cliffs — an
accidentally quadratic loop, a lost fast path — not single-digit drift.

Usage:
    perf_smoke_check.py RECORDED.jsonl BASELINE.jsonl \
        [--group lossless_dictionary] [--id lzss_compress] \
        [--max-regression 0.40]
"""

import argparse
import json
import sys


def load_row(path, group, bench_id):
    last = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("group") == group and row.get("id") == bench_id:
                last = row  # keep the most recent matching row
    if last is None:
        sys.exit(f"error: no row group={group!r} id={bench_id!r} in {path}")
    if "mib_per_s" not in last:
        sys.exit(f"error: row {group}/{bench_id} in {path} has no mib_per_s")
    return last


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("recorded", help="freshly recorded JSONL file")
    parser.add_argument("baseline", help="committed baseline JSONL file")
    parser.add_argument("--group", default="lossless_dictionary")
    parser.add_argument("--id", dest="bench_id", default="lzss_compress")
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.40,
        help="tolerated fractional drop below the baseline (default 0.40)",
    )
    args = parser.parse_args()

    recorded = load_row(args.recorded, args.group, args.bench_id)
    baseline = load_row(args.baseline, args.group, args.bench_id)

    floor = baseline["mib_per_s"] * (1.0 - args.max_regression)
    name = f"{args.group}/{args.bench_id}"
    print(
        f"{name}: recorded {recorded['mib_per_s']:.1f} MiB/s, "
        f"baseline {baseline['mib_per_s']:.1f} MiB/s, "
        f"floor {floor:.1f} MiB/s"
    )
    if recorded["mib_per_s"] < floor:
        sys.exit(
            f"error: {name} regressed more than "
            f"{args.max_regression:.0%} below the committed baseline"
        )
    print("ok")


if __name__ == "__main__":
    main()
