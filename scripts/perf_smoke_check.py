#!/usr/bin/env python3
"""Guard the committed bench baselines against large perf regressions.

Compares one benchmark row of a freshly recorded JSONL file (produced by a
`FRAZ_BENCH_SMOKE=1 FRAZ_BENCH_RECORD_DIR=... cargo bench` run; see
`vendor/criterion`) against the committed row in `baselines/`, and fails if
throughput dropped by more than the tolerated fraction.

The default tolerance is deliberately loose (40%): CI machines are noisy and
the smoke run takes a single sample, so this only catches real cliffs — an
accidentally quadratic loop, a lost fast path — not single-digit drift.

Usage:
    perf_smoke_check.py RECORDED.jsonl BASELINE.jsonl \
        [--group lossless_dictionary] [--id lzss_compress] \
        [--max-regression 0.40]

A second mode asserts a *relative* speedup between two rows of the same
recorded file (so both sides ran on the same machine, same run — machine
noise cancels).  This pins design-level performance promises, e.g. that the
SZx-style backend stays ≥5× faster than SZ at compression:

    perf_smoke_check.py RECORDED.jsonl BASELINE.jsonl \
        --group compress --id szx --speedup-vs-id sz --min-speedup 5.0

A repeatable --check GROUP/ID applies the same floor to several rows in
one invocation (replacing the single --group/--id pair):

    perf_smoke_check.py RECORDED.jsonl BASELINE.jsonl \
        --check store_throughput/write_fixed_bound \
        --check store_throughput/read_full \
        --check store_throughput/read_region_slab

Rows whose baseline carries an `evaluations` count (the search_sensitivity
group) are checked the other way around — lower is better, and the recorded
count must stay under the baseline plus the tolerance.  Evaluation counts
are deterministic, so these rows catch any seeding regression exactly.

Rows whose baseline carries a `ratio` (the scenarios group) are
higher-is-better floors like throughput, but the quantity is a
deterministic compression ratio of a fixed synthetic input — so a trip here
is a real codec or generator change, never machine noise.

Rows whose baseline carries a `jobs_per_s` (the service group, recorded by
`fraz-loadgen --out`) are higher-is-better completed-job throughput floors
for the compression service.  Latency percentiles ride along in the rows
for the record but are deliberately not gated: p99 on a shared two-core CI
runner is dominated by scheduler noise, while a real service regression
(lost pool, serialized admission) craters jobs_per_s as well.
"""

import argparse
import json
import sys


def load_row(path, group, bench_id, metric="mib_per_s"):
    last = None
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            row = json.loads(line)
            if row.get("group") == group and row.get("id") == bench_id:
                last = row  # keep the most recent matching row
    if last is None:
        sys.exit(f"error: no row group={group!r} id={bench_id!r} in {path}")
    if metric is not None and metric not in last:
        sys.exit(f"error: row {group}/{bench_id} in {path} has no {metric}")
    return last


def check_pair(recorded_path, baseline_path, group, bench_id, max_regression):
    """Floor-check one GROUP/ID row.  The baseline row's metric decides the
    direction: `mib_per_s` is higher-is-better (throughput floor),
    `evaluations` is lower-is-better (search-effort ceiling), and `ratio`
    is a higher-is-better compression-ratio floor."""
    name = f"{group}/{bench_id}"
    baseline = load_row(baseline_path, group, bench_id, metric=None)
    if "ratio" in baseline:
        recorded = load_row(recorded_path, group, bench_id, metric="ratio")
        # Ratios of fixed inputs are deterministic on one platform; the
        # slack only absorbs cross-platform float rounding in the codecs.
        floor = baseline["ratio"] * (1.0 - max_regression)
        print(
            f"{name}: recorded ratio {recorded['ratio']:.3f}, "
            f"baseline {baseline['ratio']:.3f}, floor {floor:.3f}"
        )
        if recorded["ratio"] < floor:
            sys.exit(
                f"error: {name} compresses more than "
                f"{max_regression:.0%} worse than the committed ratio baseline"
            )
        return
    if "evaluations" in baseline:
        recorded = load_row(recorded_path, group, bench_id, metric="evaluations")
        # Evaluation counts are deterministic on one platform; the slack
        # only absorbs cross-platform float rounding in the searches.
        ceiling = baseline["evaluations"] * (1.0 + max_regression)
        print(
            f"{name}: recorded {recorded['evaluations']} evaluation(s), "
            f"baseline {baseline['evaluations']}, ceiling {ceiling:.1f}"
        )
        if recorded["evaluations"] > ceiling:
            sys.exit(
                f"error: {name} spent more than "
                f"{max_regression:.0%} above the committed evaluation baseline"
            )
        return
    if "jobs_per_s" in baseline:
        recorded = load_row(recorded_path, group, bench_id, metric="jobs_per_s")
        floor = baseline["jobs_per_s"] * (1.0 - max_regression)
        print(
            f"{name}: recorded {recorded['jobs_per_s']:.2f} jobs/s, "
            f"baseline {baseline['jobs_per_s']:.2f} jobs/s, floor {floor:.2f}"
        )
        if recorded["jobs_per_s"] < floor:
            sys.exit(
                f"error: {name} completed more than "
                f"{max_regression:.0%} fewer jobs/s than the committed baseline"
            )
        return
    if "mib_per_s" not in baseline:
        sys.exit(f"error: row {name} in {baseline_path} has no mib_per_s")
    recorded = load_row(recorded_path, group, bench_id)
    floor = baseline["mib_per_s"] * (1.0 - max_regression)
    print(
        f"{name}: recorded {recorded['mib_per_s']:.1f} MiB/s, "
        f"baseline {baseline['mib_per_s']:.1f} MiB/s, "
        f"floor {floor:.1f} MiB/s"
    )
    if recorded["mib_per_s"] < floor:
        sys.exit(
            f"error: {name} regressed more than "
            f"{max_regression:.0%} below the committed baseline"
        )


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("recorded", help="freshly recorded JSONL file")
    parser.add_argument("baseline", help="committed baseline JSONL file")
    parser.add_argument("--group", default="lossless_dictionary")
    parser.add_argument("--id", dest="bench_id", default="lzss_compress")
    parser.add_argument(
        "--check",
        action="append",
        default=None,
        metavar="GROUP/ID",
        help="row to floor-check, repeatable; replaces --group/--id "
        "(not combinable with --speedup-vs-id)",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.40,
        help="tolerated fractional drop below the baseline (default 0.40)",
    )
    parser.add_argument(
        "--speedup-vs-id",
        default=None,
        help="also require the recorded row to be --min-speedup times faster "
        "than this row (same group, same recorded file)",
    )
    parser.add_argument(
        "--speedup-vs-group",
        default=None,
        help="group of the --speedup-vs-id row (default: --group)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        help="required speedup multiple for --speedup-vs-id (default 5.0)",
    )
    args = parser.parse_args()

    if args.check:
        if args.speedup_vs_id is not None:
            sys.exit("error: --check cannot be combined with --speedup-vs-id")
        pairs = []
        for spec in args.check:
            group, sep, bench_id = spec.partition("/")
            if not sep or not group or not bench_id:
                sys.exit(f"error: --check needs GROUP/ID, got {spec!r}")
            pairs.append((group, bench_id))
    else:
        pairs = [(args.group, args.bench_id)]

    for group, bench_id in pairs:
        check_pair(args.recorded, args.baseline, group, bench_id, args.max_regression)
    if args.speedup_vs_id is not None:
        name = f"{args.group}/{args.bench_id}"
        recorded = load_row(args.recorded, args.group, args.bench_id)
        vs_group = args.speedup_vs_group or args.group
        reference = load_row(args.recorded, vs_group, args.speedup_vs_id)
        speedup = recorded["mib_per_s"] / reference["mib_per_s"]
        print(
            f"{name} vs {vs_group}/{args.speedup_vs_id}: "
            f"{speedup:.1f}x (required >= {args.min_speedup:.1f}x)"
        )
        if speedup < args.min_speedup:
            sys.exit(
                f"error: {name} is only {speedup:.1f}x faster than "
                f"{vs_group}/{args.speedup_vs_id} "
                f"(required {args.min_speedup:.1f}x)"
            )

    print("ok")


if __name__ == "__main__":
    main()
