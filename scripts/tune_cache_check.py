#!/usr/bin/env python3
"""Assert that a --tune-cache warm run spends far fewer search evaluations
than the cold run that populated the cache.

Both inputs are `fraz run --out` JSONL files (one
`{"experiment":"fraz_cli_run","row":{...}}` record per field).  The script
sums `row.evaluations` over each file and fails unless the warm total
dropped by at least --min-drop (default 0.5, i.e. half the cold effort).
Evaluation counts are deterministic, so this is a sharp check, not a noisy
wall-clock one.

Usage:
    fraz run --config m.toml --tune-cache DIR --out cold.jsonl
    fraz run --config m.toml --tune-cache DIR --out warm.jsonl
    tune_cache_check.py cold.jsonl warm.jsonl [--min-drop 0.5]
"""

import argparse
import json
import sys


def total_evaluations(path):
    total = 0
    rows = 0
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            row = record.get("row", {})
            total += int(row.get("evaluations", 0))
            rows += 1
    if rows == 0:
        sys.exit(f"error: no run records in {path}")
    return total, rows


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("cold", help="JSONL from the cache-populating run")
    parser.add_argument("warm", help="JSONL from the cache-seeded rerun")
    parser.add_argument(
        "--min-drop",
        type=float,
        default=0.5,
        help="required fractional drop in total evaluations (default 0.5)",
    )
    args = parser.parse_args()

    cold, cold_rows = total_evaluations(args.cold)
    warm, warm_rows = total_evaluations(args.warm)
    if cold_rows != warm_rows:
        sys.exit(
            f"error: field counts differ ({cold_rows} cold vs {warm_rows} "
            "warm) — the runs are not comparable"
        )
    if cold == 0:
        sys.exit(f"error: cold run in {args.cold} recorded no evaluations")

    drop = 1.0 - warm / cold
    print(
        f"tune-cache: {cold} cold evaluation(s) -> {warm} warm "
        f"({drop:.0%} drop over {cold_rows} field(s), "
        f"required >= {args.min_drop:.0%})"
    )
    if drop < args.min_drop:
        sys.exit(
            f"error: warm run only dropped evaluations by {drop:.0%} "
            f"(required {args.min_drop:.0%}) — the tuning cache is not "
            "seeding the searches"
        )
    print("ok")


if __name__ == "__main__":
    main()
